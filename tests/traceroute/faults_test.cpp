// Fault plane: schedule determinism, campaign resilience (retry, circuit
// breaker, failover), timeout-vs-loss, the attrition accounting invariant,
// and the two reproducibility guarantees the plane must keep:
//   1. a zero-intensity plan is the identity (no FaultPlane is built, and
//      reports match a fault-free pipeline byte for byte), and
//   2. the same seed + plan replays a faulted campaign byte for byte.
#include "net/faults.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "io/export.h"
#include "support/mini_net.h"
#include "traceroute/campaign.h"

namespace cfs {
namespace {

using testing::MiniNet;

// ---------------------------------------------------------------------------
// FaultPlane unit behaviour

TEST(FaultPlan, ZeroIntensityIsNotAny) {
  EXPECT_FALSE(FaultPlan{}.any());
  FaultPlan plan;
  plan.lg_outage_fraction = 0.1;
  EXPECT_TRUE(plan.any());
  plan = FaultPlan{};
  plan.lg_ban_burst = 5;
  EXPECT_TRUE(plan.any());
  plan = FaultPlan{};
  plan.peeringdb_withheld = 0.01;
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlane, ZeroPlanInjectsNothing) {
  FaultPlane plane(FaultPlan{}, 42);
  for (std::uint32_t id = 0; id < 50; ++id) {
    EXPECT_FALSE(plane.lg_offline(RouterId(id), 1000.0));
    EXPECT_FALSE(plane.lg_banned(RouterId(id), 1000.0));
    EXPECT_FALSE(plane.vp_dead(VantagePointId(id), 1e9));
    EXPECT_FALSE(plane.probe_times_out());
    EXPECT_FALSE(plane.withhold_record(0.0, id));
  }
}

TEST(FaultPlane, OutageScheduleIsDeterministicAndSeedDependent) {
  FaultPlan plan;
  plan.lg_outage_fraction = 0.5;
  FaultPlane a(plan, 7);
  FaultPlane b(plan, 7);
  FaultPlane c(plan, 8);
  int hit = 0, differs = 0;
  for (std::uint32_t id = 0; id < 200; ++id) {
    bool any_window = false;
    for (double t = 0.0; t < 3600.0; t += 300.0) {
      EXPECT_EQ(a.lg_offline(RouterId(id), t), b.lg_offline(RouterId(id), t));
      any_window |= a.lg_offline(RouterId(id), t);
      differs += a.lg_offline(RouterId(id), t) != c.lg_offline(RouterId(id), t);
    }
    hit += any_window;
  }
  // Roughly half the LGs suffer an outage; a different seed picks a
  // different set.
  EXPECT_GT(hit, 40);
  EXPECT_LT(hit, 160);
  EXPECT_GT(differs, 0);
}

TEST(FaultPlane, OutageWindowIsBounded) {
  FaultPlan plan;
  plan.lg_outage_fraction = 1.0;  // every LG has a window
  plan.lg_outage_start_horizon_s = 100.0;
  plan.lg_outage_duration_s = 50.0;
  FaultPlane plane(plan, 3);
  for (std::uint32_t id = 0; id < 20; ++id) {
    // Well past start horizon + duration every LG is back.
    EXPECT_FALSE(plane.lg_offline(RouterId(id), 151.0));
    // Somewhere in [0, 150) it must be down.
    bool down = false;
    for (double t = 0.0; t < 150.0; t += 1.0)
      down |= plane.lg_offline(RouterId(id), t);
    EXPECT_TRUE(down);
  }
}

TEST(FaultPlane, BanTripsAfterBurstAndExpires) {
  FaultPlan plan;
  plan.lg_ban_burst = 3;
  plan.lg_ban_window_s = 100.0;
  plan.lg_ban_duration_s = 500.0;
  FaultPlane plane(plan, 1);
  const RouterId lg(9);

  for (int i = 0; i < 3; ++i) plane.record_lg_query(lg, i * 10.0);
  EXPECT_FALSE(plane.lg_banned(lg, 30.0));  // at the budget, not over it
  plane.record_lg_query(lg, 30.0);          // 4th query within the window
  EXPECT_TRUE(plane.lg_banned(lg, 31.0));
  EXPECT_EQ(plane.bans_tripped(), 1u);
  // Queries during the ban are refused and don't extend it.
  plane.record_lg_query(lg, 100.0);
  EXPECT_TRUE(plane.lg_banned(lg, 529.0));
  EXPECT_FALSE(plane.lg_banned(lg, 531.0));
  EXPECT_EQ(plane.bans_tripped(), 1u);
}

TEST(FaultPlane, SpacedQueriesNeverTripBan) {
  FaultPlan plan;
  plan.lg_ban_burst = 2;
  plan.lg_ban_window_s = 50.0;
  FaultPlane plane(plan, 1);
  // One query per window: the paper's etiquette keeps the LG happy.
  for (int i = 0; i < 20; ++i) plane.record_lg_query(RouterId(1), i * 60.0);
  EXPECT_EQ(plane.bans_tripped(), 0u);
}

TEST(FaultPlane, VpChurnKillsForGood) {
  FaultPlan plan;
  plan.vp_churn_fraction = 1.0;
  plan.vp_churn_horizon_s = 1000.0;
  FaultPlane plane(plan, 11);
  for (std::uint32_t id = 0; id < 20; ++id) {
    const double death = plane.vp_death_s(VantagePointId(id));
    ASSERT_GE(death, 0.0);
    ASSERT_LT(death, 1000.0);
    EXPECT_FALSE(plane.vp_dead(VantagePointId(id), death - 0.001));
    EXPECT_TRUE(plane.vp_dead(VantagePointId(id), death));
    EXPECT_TRUE(plane.vp_dead(VantagePointId(id), 1e9));  // never comes back
  }
}

TEST(FaultPlane, WithholdIsPerRecordAndRoughlyCalibrated) {
  FaultPlane plane(FaultPlan{}, 5);
  int withheld = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const bool w = plane.withhold_record(0.3, key);
    EXPECT_EQ(w, plane.withhold_record(0.3, key));  // pure function of key
    withheld += w;
  }
  EXPECT_GT(withheld, 200);
  EXPECT_LT(withheld, 400);
}

// ---------------------------------------------------------------------------
// Engine: timeout is distinct from loss

TEST(FaultedEngine, TimeoutsAreDistinctFromLoss) {
  MiniNet net;
  const Asn a = net.add_as(1000, AsType::Transit, {0, 1});
  const Asn c = net.add_as(5000, AsType::Content, {1});
  net.xconnect(c, a, 1, BusinessRel::CustomerProvider);

  RoutingOracle oracle(net.topo);
  ForwardingEngine fwd(net.topo, oracle);
  FaultPlan plan;
  plan.probe_timeout_rate = 0.5;
  FaultPlane plane(plan, 2);
  EngineConfig cfg;
  cfg.probe_loss = 0.0;  // any silence below is a timeout, not loss
  TracerouteEngine engine(net.topo, fwd, cfg, 9, &plane);

  // Hand-built vantage point in the transit AS (the mini topology has no
  // eyeball ASes for VantagePointSet to host Atlas probes on).
  VantagePoint vp;
  vp.id = VantagePointId(0);
  vp.platform = Platform::RipeAtlas;
  vp.attach = net.topo.routers_of(a).front();
  vp.asn = a;
  vp.access_ms = 10.0;
  const auto targets = MeasurementCampaign::targets_for(net.topo, c);
  ASSERT_FALSE(targets.empty());

  std::size_t timed_out = 0, responded = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const TraceResult trace = engine.trace(vp, targets[0]);
    std::size_t counted = 0;
    for (const Hop& hop : trace.hops) {
      EXPECT_FALSE(hop.responded && hop.timed_out);
      counted += hop.timed_out;
      responded += hop.responded;
    }
    EXPECT_EQ(counted, trace.hops_timed_out);
    timed_out += trace.hops_timed_out;
  }
  EXPECT_GT(timed_out, 0u);   // rate 0.5 must silence some hops...
  EXPECT_GT(responded, 0u);   // ...but not all of them
}

// ---------------------------------------------------------------------------
// Campaign resilience

struct FaultedCampaign {
  MiniNet net;
  Asn a, c;
  std::unique_ptr<LookingGlassDirectory> lgs;
  std::unique_ptr<RoutingOracle> routing;
  std::unique_ptr<ForwardingEngine> forwarding;
  std::unique_ptr<FaultPlane> plane;
  std::unique_ptr<TracerouteEngine> engine;
  std::unique_ptr<MeasurementCampaign> campaign;
  std::vector<Ipv4> targets;

  explicit FaultedCampaign(const FaultPlan& plan, std::uint64_t seed = 7) {
    a = net.add_as(1000, AsType::Transit, {0, 1});
    c = net.add_as(5000, AsType::Content, {1});
    net.xconnect(c, a, 1, BusinessRel::CustomerProvider);
    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo, LookingGlassDirectory::Config{.host_probability = 1.0,
                                                .bgp_support_probability = 0,
                                                .cooldown_s = 60,
                                                .seed = 1});
    routing = std::make_unique<RoutingOracle>(net.topo);
    forwarding = std::make_unique<ForwardingEngine>(net.topo, *routing);
    plane = std::make_unique<FaultPlane>(plan, seed);
    EngineConfig cfg;
    cfg.probe_loss = 0.0;
    engine = std::make_unique<TracerouteEngine>(net.topo, *forwarding, cfg, 9,
                                                plane.get());
    campaign = std::make_unique<MeasurementCampaign>(net.topo, *engine, *lgs,
                                                     plane.get());
    targets = MeasurementCampaign::targets_for(net.topo, c);
  }

  // A hand-built Atlas vantage point behind the first router of the AS.
  [[nodiscard]] VantagePoint atlas_vp(std::uint32_t id, Asn owner) const {
    VantagePoint vp;
    vp.id = VantagePointId(id);
    vp.platform = Platform::RipeAtlas;
    for (const auto& router : net.topo.routers())
      if (router.owner == owner) {
        vp.attach = router.id;
        break;
      }
    vp.asn = owner;
    vp.access_ms = 10.0;
    return vp;
  }
};

void expect_invariant(const FaultMetrics& fm) {
  EXPECT_EQ(fm.traces_attempted,
            fm.traces_kept + fm.traces_unreachable + fm.probes_abandoned +
                fm.probes_skipped_open_circuit)
      << "every attempted probe must be accounted for exactly once";
}

TEST(FaultedCampaignTest, PermanentOutageOpensCircuitAndSkips) {
  FaultPlan plan;
  plan.lg_outage_fraction = 1.0;          // every LG...
  plan.lg_outage_start_horizon_s = 0.0;   // ...down from t=0...
  plan.lg_outage_duration_s = 1e9;        // ...forever
  plan.retry.max_retries = 2;
  plan.retry.circuit_threshold = 3;
  FaultedCampaign fx(plan);

  // One LG vantage point, probed repeatedly via probe() (no failover pool).
  VantagePoint lg_vp;
  lg_vp.platform = Platform::LookingGlass;
  lg_vp.id = VantagePointId(0);
  lg_vp.attach = fx.net.topo.routers().front().id;
  lg_vp.asn = fx.net.topo.routers().front().owner;

  // First unit: 1 preflight + 2 retries, all unavailable -> abandoned, and
  // the 3 consecutive failures open the circuit.
  TraceResult t1 = fx.campaign->probe(lg_vp, fx.targets[0]);
  EXPECT_TRUE(t1.hops.empty());
  const FaultMetrics& fm = fx.campaign->fault_stats();
  EXPECT_EQ(fm.retries, 2u);
  EXPECT_EQ(fm.probes_abandoned, 1u);
  EXPECT_EQ(fm.circuits_opened, 1u);

  // Second unit: the breaker is open, work is skipped without retrying.
  TraceResult t2 = fx.campaign->probe(lg_vp, fx.targets[0]);
  EXPECT_TRUE(t2.hops.empty());
  EXPECT_EQ(fm.retries, 2u);  // unchanged: open circuit short-circuits
  EXPECT_EQ(fm.probes_skipped_open_circuit, 1u);
  expect_invariant(fm);
}

TEST(FaultedCampaignTest, TransientOutageRecoversViaBackoff) {
  FaultPlan plan;
  plan.lg_outage_fraction = 1.0;
  plan.lg_outage_start_horizon_s = 0.0;  // down at t=0
  plan.lg_outage_duration_s = 4.0;       // but only briefly
  plan.retry.max_retries = 2;
  plan.retry.backoff_base_s = 5.0;  // first retry lands after the outage
  FaultedCampaign fx(plan);

  VantagePoint lg_vp;
  lg_vp.platform = Platform::LookingGlass;
  lg_vp.id = VantagePointId(0);
  lg_vp.attach = fx.net.topo.routers().front().id;
  lg_vp.asn = fx.net.topo.routers().front().owner;

  const TraceResult trace = fx.campaign->probe(lg_vp, fx.targets[0]);
  EXPECT_FALSE(trace.hops.empty());  // retry succeeded after the window
  const FaultMetrics& fm = fx.campaign->fault_stats();
  EXPECT_GE(fm.retries, 1u);
  EXPECT_EQ(fm.traces_kept, 1u);
  EXPECT_EQ(fm.probes_abandoned, 0u);
  expect_invariant(fm);
}

TEST(FaultedCampaignTest, DeadVpFailsOverToSameMetro) {
  FaultPlan plan;
  plan.vp_churn_fraction = 0.5;     // half the VPs churn...
  plan.vp_churn_horizon_s = 100.0;  // ...and are dead by t=100
  FaultedCampaign fx(plan);

  // Two Atlas VPs behind different routers of the same transit AS (same
  // metro). Pick ids so one is scheduled to die and the failover candidate
  // never churns — the schedule is a pure hash, so probe it directly.
  std::uint32_t doomed_id = 0, safe_id = 0;
  bool found_doomed = false, found_safe = false;
  for (std::uint32_t id = 0; id < 64 && !(found_doomed && found_safe); ++id) {
    const double death = fx.plane->vp_death_s(VantagePointId(id));
    if (death >= 0.0 && !found_doomed) doomed_id = id, found_doomed = true;
    if (death < 0.0 && !found_safe) safe_id = id, found_safe = true;
  }
  ASSERT_TRUE(found_doomed && found_safe);

  VantagePoint dead = fx.atlas_vp(doomed_id, fx.a);
  VantagePoint alive = fx.atlas_vp(safe_id, fx.a);
  // Attach the failover candidate to a *different* router in the same
  // metro, otherwise pick_failover skips it.
  for (const auto& router : fx.net.topo.routers())
    if (router.owner == fx.a && router.id.value != dead.attach.value &&
        fx.net.topo.metro_of(router.facility) ==
            fx.net.topo.metro_of(fx.net.topo.router(dead.attach).facility)) {
      alive.attach = router.id;
      break;
    }
  ASSERT_NE(alive.attach.value, dead.attach.value);

  const VantagePoint* pool[] = {&dead, &alive};
  // First run advances virtual time by a 300s batch per target, past the
  // churn horizon; the second run then hits the dead VP's schedule.
  (void)fx.campaign->run(pool, fx.targets);
  ASSERT_GE(fx.campaign->virtual_elapsed_s(), 100.0);
  const auto more = fx.campaign->run(pool, fx.targets);

  const FaultMetrics& fm = fx.campaign->fault_stats();
  EXPECT_GE(fm.failovers, fx.targets.size());  // one per dead-VP unit
  EXPECT_GT(fm.traces_kept, 0u);
  EXPECT_EQ(fm.probes_abandoned, 0u);  // everything was salvaged
  expect_invariant(fm);
  // All of the second run's work executed from the substitute VP.
  ASSERT_FALSE(more.empty());
  for (const auto& tr : more) EXPECT_TRUE(tr.vp == alive.id);
}

TEST(FaultedCampaignTest, RateLimitBanTriggersBackoffAccounting) {
  FaultPlan plan;
  plan.lg_ban_burst = 1;          // second query within the window bans
  plan.lg_ban_window_s = 1000.0;  // wider than the 60s LG cooldown
  plan.lg_ban_duration_s = 1e9;
  plan.retry.max_retries = 1;
  plan.retry.circuit_threshold = 2;
  FaultedCampaign fx(plan);

  VantagePoint lg_vp;
  lg_vp.platform = Platform::LookingGlass;
  lg_vp.id = VantagePointId(0);
  lg_vp.attach = fx.net.topo.routers().front().id;
  lg_vp.asn = fx.net.topo.routers().front().owner;

  // Query 1 executes; query 2 trips the ban; query 3 finds it banned.
  (void)fx.campaign->probe(lg_vp, fx.targets[0]);
  (void)fx.campaign->probe(lg_vp, fx.targets[0]);
  (void)fx.campaign->probe(lg_vp, fx.targets[0]);
  const FaultMetrics& fm = fx.campaign->fault_stats();
  EXPECT_GE(fm.lg_bans, 1u);
  EXPECT_GT(fm.retries, 0u);
  expect_invariant(fm);
}

// ---------------------------------------------------------------------------
// Pipeline-level determinism and identity (the PR's acceptance criteria)

// Timing metrics are wall-clock and legitimately differ between runs; the
// determinism guarantee covers everything else. Compare reports with the
// metrics subtree removed, then the fault counters exactly.
void expect_reports_identical(const CfsReport& r1, const CfsReport& r2) {
  EXPECT_EQ(r1.metrics.faults, r2.metrics.faults);
  JsonValue j1 = report_to_json(r1);
  JsonValue j2 = report_to_json(r2);
  j1.as_object().erase("metrics");
  j2.as_object().erase("metrics");
  EXPECT_EQ(j1.pretty(), j2.pretty());
}

CfsReport run_tiny(const PipelineConfig& config) {
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.5);
  return pipeline.run_cfs(std::move(traces));
}

TEST(FaultDeterminism, ZeroPlanIsTheIdentity) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  // Zero intensities: no plane is even constructed...
  Pipeline pipeline(config);
  EXPECT_EQ(pipeline.faults(), nullptr);

  // ...and a config that sets only inert FaultPlan fields (retry policy,
  // seed) produces a byte-identical report: the plane is strictly additive.
  PipelineConfig inert = config;
  inert.faults.seed = 999;
  inert.faults.retry.max_retries = 9;
  expect_reports_identical(run_tiny(config), run_tiny(inert));
}

TEST(FaultDeterminism, SameSeedAndPlanReplayByteIdentical) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  config.faults.lg_outage_fraction = 0.4;
  config.faults.lg_ban_burst = 4;
  config.faults.vp_churn_fraction = 0.2;
  config.faults.probe_timeout_rate = 0.1;
  config.faults.peeringdb_withheld = 0.15;
  config.faults.dns_withheld = 0.1;
  config.faults.geoip_withheld = 0.1;
  config.faults.seed = 13;

  const CfsReport r1 = run_tiny(config);
  const CfsReport r2 = run_tiny(config);
  expect_reports_identical(r1, r2);
  // The faulted run really did inject something.
  EXPECT_TRUE(r1.metrics.faults.probes_abandoned > 0 ||
              r1.metrics.faults.probes_skipped_open_circuit > 0 ||
              r1.metrics.faults.retries > 0 ||
              r1.metrics.faults.probe_timeouts > 0);
  EXPECT_GT(r1.metrics.faults.records_withheld, 0u);
  expect_invariant(r1.metrics.faults);
}

TEST(FaultDeterminism, FaultSeedChangesTheSchedule) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  config.faults.lg_outage_fraction = 0.5;
  config.faults.vp_churn_fraction = 0.3;
  config.faults.probe_timeout_rate = 0.2;
  config.faults.seed = 1;
  const CfsReport r1 = run_tiny(config);
  config.faults.seed = 2;
  const CfsReport r2 = run_tiny(config);
  JsonValue j1 = report_to_json(r1);
  JsonValue j2 = report_to_json(r2);
  j1.as_object().erase("metrics");
  j2.as_object().erase("metrics");
  EXPECT_NE(j1.pretty(), j2.pretty());
}

TEST(FaultDeterminism, HeavyFaultsDegradeWithoutCrashing) {
  // The acceptance bar: 50% LG outage + 20% VP churn completes cleanly and
  // accounts for every probe.
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  config.faults.lg_outage_fraction = 0.5;
  config.faults.vp_churn_fraction = 0.2;
  config.faults.probe_timeout_rate = 0.1;
  config.faults.peeringdb_withheld = 0.2;
  config.faults.lg_ban_burst = 3;
  config.faults.seed = 5;

  const CfsReport report = run_tiny(config);
  expect_invariant(report.metrics.faults);
  EXPECT_GT(report.metrics.faults.traces_kept, 0u);
}

}  // namespace
}  // namespace cfs
