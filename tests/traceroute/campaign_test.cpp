#include "traceroute/campaign.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct CampaignFixture {
  MiniNet net;
  Asn a, c, v;
  std::unique_ptr<LookingGlassDirectory> lgs;
  std::unique_ptr<VantagePointSet> vps;
  std::unique_ptr<RoutingOracle> routing;
  std::unique_ptr<ForwardingEngine> forwarding;
  std::unique_ptr<TracerouteEngine> engine;
  std::unique_ptr<MeasurementCampaign> campaign;

  CampaignFixture() {
    a = net.add_as(1000, AsType::Transit, {0, 1});
    c = net.add_as(5000, AsType::Content, {1});
    v = net.add_as(30000, AsType::Enterprise, {0});
    net.xconnect(c, a, 1, BusinessRel::CustomerProvider);
    net.xconnect(v, a, 0, BusinessRel::CustomerProvider);

    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo, LookingGlassDirectory::Config{.host_probability = 1.0,
                                                .bgp_support_probability = 0,
                                                .cooldown_s = 60,
                                                .seed = 1});
    PlatformConfig pcfg;
    pcfg.atlas_target = 4;
    pcfg.iplane_target = 2;
    pcfg.ark_target = 0;
    vps = std::make_unique<VantagePointSet>(net.topo, *lgs, pcfg);
    routing = std::make_unique<RoutingOracle>(net.topo);
    forwarding = std::make_unique<ForwardingEngine>(net.topo, *routing);
    engine = std::make_unique<TracerouteEngine>(net.topo, *forwarding,
                                                EngineConfig{}, 9);
    campaign = std::make_unique<MeasurementCampaign>(net.topo, *engine, *lgs);
  }
};

TEST(MeasurementCampaignTest, RunCoversVpTargetCross) {
  CampaignFixture fx;
  const auto atlas = fx.vps->of(Platform::RipeAtlas);
  ASSERT_FALSE(atlas.empty());
  const auto targets = MeasurementCampaign::targets_for(fx.net.topo, fx.c);
  ASSERT_FALSE(targets.empty());

  const auto traces = fx.campaign->run(atlas, targets);
  EXPECT_EQ(fx.campaign->traces_attempted(), atlas.size() * targets.size());
  EXPECT_EQ(fx.campaign->traces_kept(), traces.size());
  for (const auto& trace : traces) EXPECT_FALSE(trace.hops.empty());
}

TEST(MeasurementCampaignTest, ParallelBatchAdvancesClockPerTarget) {
  CampaignFixture fx;
  const auto atlas = fx.vps->of(Platform::RipeAtlas);
  const auto targets = MeasurementCampaign::targets_for(fx.net.topo, fx.c);
  const double before = fx.campaign->virtual_elapsed_s();
  fx.campaign->run(atlas, targets);
  // One 300s Atlas batch per target.
  EXPECT_NEAR(fx.campaign->virtual_elapsed_s() - before,
              300.0 * static_cast<double>(targets.size()), 1.0);
}

TEST(MeasurementCampaignTest, LookingGlassSerialisation) {
  CampaignFixture fx;
  const auto lg_vps = fx.vps->of(Platform::LookingGlass);
  ASSERT_GE(lg_vps.size(), 1u);
  const auto targets = MeasurementCampaign::targets_for(fx.net.topo, fx.c);

  const double before = fx.campaign->virtual_elapsed_s();
  // Query the same LG twice: the second must wait for the cool-down.
  fx.campaign->probe(*lg_vps[0], targets[0]);
  const double mid = fx.campaign->virtual_elapsed_s();
  fx.campaign->probe(*lg_vps[0], targets[0]);
  EXPECT_GE(fx.campaign->virtual_elapsed_s() - before, 60.0);
  EXPECT_GE(fx.campaign->virtual_elapsed_s(), mid + 30.0);
}

TEST(MeasurementCampaignTest, UnreachableTargetsDropped) {
  CampaignFixture fx;
  // An isolated AS with no links: traces toward it are empty and dropped.
  fx.net.add_as(65010, AsType::Enterprise, {3});
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, EngineConfig{}, 10);
  MeasurementCampaign campaign(fx.net.topo, engine, *fx.lgs);

  const auto atlas = fx.vps->of(Platform::RipeAtlas);
  const auto targets =
      MeasurementCampaign::targets_for(fx.net.topo, Asn(65010));
  const auto traces = campaign.run(atlas, targets);
  EXPECT_TRUE(traces.empty());
  EXPECT_GT(campaign.traces_attempted(), 0u);
  EXPECT_EQ(campaign.traces_kept(), 0u);
}

TEST(MeasurementCampaignTest, TargetsAvoidInfrastructureAddresses) {
  CampaignFixture fx;
  for (const Asn asn : {fx.a, fx.c, fx.v}) {
    for (const Ipv4 target :
         MeasurementCampaign::targets_for(fx.net.topo, asn)) {
      EXPECT_EQ(fx.net.topo.find_interface(target), nullptr);
      EXPECT_EQ(fx.net.topo.origin_of(target), asn);
    }
  }
}

}  // namespace
}  // namespace cfs
