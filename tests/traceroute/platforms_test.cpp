#include "traceroute/platforms.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace cfs {
namespace {

struct Built {
  Topology topo;
  LookingGlassDirectory lgs;
  VantagePointSet vps;

  explicit Built(const GeneratorConfig& cfg, PlatformConfig pcfg = {})
      : topo(generate_topology(cfg)),
        lgs(topo, {.host_probability = 0.5,
                   .bgp_support_probability = 0.2,
                   .cooldown_s = 60.0,
                   .seed = 2}),
        vps(topo, lgs, pcfg) {}
};

TEST(Platforms, AllFourPlatformsPopulated) {
  Built b(GeneratorConfig::small_scale());
  EXPECT_FALSE(b.vps.of(Platform::RipeAtlas).empty());
  EXPECT_FALSE(b.vps.of(Platform::LookingGlass).empty());
  EXPECT_FALSE(b.vps.of(Platform::IPlane).empty());
  EXPECT_FALSE(b.vps.of(Platform::Ark).empty());
}

TEST(Platforms, HostAddressesAreRegisteredInterfaces) {
  Built b(GeneratorConfig::tiny());
  for (const auto& vp : b.vps.all()) {
    const Interface* iface = b.topo.find_interface(vp.address);
    ASSERT_NE(iface, nullptr);
    EXPECT_EQ(iface->role, InterfaceRole::Host);
    EXPECT_EQ(iface->router, vp.attach);
    // Host address comes from the hosting AS's space.
    EXPECT_EQ(b.topo.origin_of(vp.address), vp.asn);
  }
}

TEST(Platforms, AtlasHostsSitInEyeballOrEnterpriseNetworks) {
  Built b(GeneratorConfig::small_scale());
  for (const auto* vp : b.vps.of(Platform::RipeAtlas)) {
    const auto type = b.topo.as_of(vp->asn).type;
    EXPECT_TRUE(type == AsType::Eyeball || type == AsType::Enterprise);
    EXPECT_GT(vp->access_ms, 1.0);  // home connection last-mile delay
  }
}

TEST(Platforms, LookingGlassVpsAreTheLgRouters) {
  Built b(GeneratorConfig::small_scale());
  const auto lg_vps = b.vps.of(Platform::LookingGlass);
  EXPECT_EQ(lg_vps.size(), b.lgs.entries().size());
  for (const auto* vp : lg_vps) {
    EXPECT_NE(b.lgs.find(vp->attach), nullptr);
    EXPECT_LT(vp->access_ms, 1.0);  // on-router vantage point
  }
}

TEST(Platforms, EuropeBiasShowsInAtlasDistribution) {
  PlatformConfig pcfg;
  pcfg.atlas_target = 400;
  pcfg.atlas_europe_bias = 8.0;
  Built b(GeneratorConfig::small_scale(), pcfg);
  std::size_t europe = 0;
  std::size_t total = 0;
  for (const auto* vp : b.vps.of(Platform::RipeAtlas)) {
    const auto& fac = b.topo.facility(b.topo.router(vp->attach).facility);
    europe += b.topo.metro(fac.metro).region == Region::Europe;
    ++total;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(europe) / total, 0.5);
}

TEST(Platforms, StatsCountDistinctAsnsAndCountries) {
  Built b(GeneratorConfig::small_scale());
  const auto stats = b.vps.stats(Platform::RipeAtlas, b.topo);
  EXPECT_GT(stats.vantage_points, 0u);
  EXPECT_GT(stats.distinct_asns, 1u);
  EXPECT_GT(stats.distinct_countries, 1u);
  EXPECT_LE(stats.distinct_asns, stats.vantage_points);

  const auto totals = b.vps.totals(b.topo);
  EXPECT_EQ(totals.vantage_points, b.vps.all().size());
  EXPECT_GE(totals.distinct_asns, stats.distinct_asns);
}

TEST(Platforms, VpAccessorBounds) {
  Built b(GeneratorConfig::tiny());
  EXPECT_NO_THROW(b.vps.vp(VantagePointId(0)));
  EXPECT_THROW(
      b.vps.vp(VantagePointId(static_cast<std::uint32_t>(b.vps.all().size()))),
      std::out_of_range);
}

}  // namespace
}  // namespace cfs
