#include "traceroute/forwarding.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct ForwardingFixture {
  MiniNet net;
  Asn t1a, t1b, a, b, c, e;
  LinkId c_a_link, c_e_link;

  ForwardingFixture() {
    t1a = net.add_as(100, AsType::Tier1, {0, 1, 4});
    t1b = net.add_as(101, AsType::Tier1, {0, 2, 5});
    a = net.add_as(1000, AsType::Transit, {1, 4});
    b = net.add_as(1001, AsType::Transit, {2, 5});
    c = net.add_as(5000, AsType::Content, {1, 3});
    e = net.add_as(10000, AsType::Eyeball, {2, 3});

    net.xconnect(t1a, t1b, 0, BusinessRel::PeerPeer);
    net.xconnect(a, t1a, 1, BusinessRel::CustomerProvider);
    net.xconnect(b, t1b, 2, BusinessRel::CustomerProvider);
    c_a_link = net.xconnect(c, a, 1, BusinessRel::CustomerProvider);
    net.xconnect(e, b, 2, BusinessRel::CustomerProvider);
    net.join_ixp(c, 3);
    net.join_ixp(e, 3);
    c_e_link = net.public_peer(c, e, BusinessRel::PeerPeer);
    net.topo.validate();
  }
};

TEST(Forwarding, ResponsibleRouterForInterface) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  const Link& link = fx.net.topo.link(fx.c_a_link);
  EXPECT_EQ(fwd.responsible_router(link.a.address), link.a.router);
  EXPECT_EQ(fwd.responsible_router(link.b.address), link.b.router);
}

TEST(Forwarding, ResponsibleRouterForBareAddressIsInOriginAs) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  const Prefix& block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto router = fwd.responsible_router(block.at(block.size() / 2));
  ASSERT_TRUE(router.has_value());
  EXPECT_EQ(fx.net.topo.router(*router).owner, fx.e);
}

TEST(Forwarding, ResponsibleRouterUnknownAddress) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  EXPECT_FALSE(fwd.responsible_router(*Ipv4::parse("9.9.9.9")).has_value());
}

TEST(Forwarding, IntraAsPathCoversBackboneChain) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  // Tier1a routers: fac 0, 1 (Frankfurt) and 4 (London), chained in
  // facility order 0-1-4 by MiniNet.
  const RouterId from = fx.net.router(fx.t1a, 0);
  const RouterId to = fx.net.router(fx.t1a, 4);
  const auto path = fwd.intra_as_path(from, to);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].router, from);
  EXPECT_EQ(path[2].router, to);
  // Cumulative latency grows along the path.
  EXPECT_LT(path[0].cumulative_ms, path[1].cumulative_ms);
  EXPECT_LT(path[1].cumulative_ms, path[2].cumulative_ms);
  // Ingress of intermediate hops is a backbone address of the owner.
  const auto* iface = fx.net.topo.find_interface(path[1].ingress);
  ASSERT_NE(iface, nullptr);
  EXPECT_EQ(iface->role, InterfaceRole::Backbone);
}

TEST(Forwarding, PrivatePeeringShowsPtpIngress) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  // From C's router toward A's address space: the hop into A must carry
  // A's side of the cross-connect /30.
  const Prefix& a_block = fx.net.topo.as_of(fx.a).prefixes.front();
  const Ipv4 target = a_block.at(a_block.size() / 2);
  const auto path = fwd.route(fx.net.router(fx.c, 3), target);
  ASSERT_FALSE(path.empty());
  const Link& link = fx.net.topo.link(fx.c_a_link);
  bool crossed = false;
  for (const auto& hop : path)
    if (hop.via_link == fx.c_a_link) {
      crossed = true;
      EXPECT_EQ(hop.ingress, link.b.address);  // A is endpoint b
      EXPECT_EQ(fx.net.topo.router(hop.router).owner, fx.a);
    }
  EXPECT_TRUE(crossed);
}

TEST(Forwarding, PublicPeeringShowsIxpLanIngress) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  // C -> E goes over the IXP; the hop entering E replies from E's IXP LAN
  // address: the (IP_A, IP_e, ...) signature of public peering.
  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const Ipv4 target = e_block.at(e_block.size() / 2);
  const auto path = fwd.route(fx.net.router(fx.c, 3), target);
  ASSERT_FALSE(path.empty());
  bool crossed = false;
  for (const auto& hop : path)
    if (hop.via_link == fx.c_e_link) {
      crossed = true;
      EXPECT_EQ(fx.net.topo.ixp_of_address(hop.ingress), fx.net.ix);
      EXPECT_EQ(fx.net.topo.router(hop.router).owner, fx.e);
    }
  EXPECT_TRUE(crossed);
}

TEST(Forwarding, FirstHopIsSourceRouter) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  const RouterId src = fx.net.router(fx.c, 1);
  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto path = fwd.route(src, e_block.at(100));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path[0].router, src);
  EXPECT_EQ(path[0].cumulative_ms, 0.0);
}

TEST(Forwarding, UnreachableTargetYieldsEmptyPath) {
  ForwardingFixture fx;
  fx.net.add_as(65001, AsType::Enterprise, {5});
  fx.net.topo.validate();
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  const Prefix& z_block = fx.net.topo.as_of(Asn(65001)).prefixes.front();
  EXPECT_TRUE(fwd.route(fx.net.router(fx.c, 1), z_block.at(10)).empty());
}

TEST(Forwarding, LinksBetweenSymmetric) {
  ForwardingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  EXPECT_EQ(fwd.links_between(fx.c, fx.a).size(), 1u);
  EXPECT_EQ(fwd.links_between(fx.a, fx.c).size(), 1u);
  EXPECT_TRUE(fwd.links_between(fx.c, fx.b).empty());
}

// Property: on a generated topology, every hop in every route is entered
// via a link that is actually incident to that hop's router, cumulative
// latency is non-decreasing, and consecutive routers share a link.
TEST(ForwardingProperty, GeneratedRoutesAreWellFormed) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  RoutingOracle oracle(topo);
  ForwardingEngine fwd(topo, oracle);
  Rng rng(31);

  const auto ases = topo.ases();
  int nonempty = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto& src_as = ases[rng.index(ases.size())];
    const auto& dst_as = ases[rng.index(ases.size())];
    const auto src_routers = topo.routers_of(src_as.asn);
    const Prefix& block = dst_as.prefixes.front();
    const Ipv4 target = block.at(1 + rng.uniform(block.size() - 2));
    const auto path =
        fwd.route(src_routers[rng.index(src_routers.size())], target);
    if (path.empty()) continue;
    ++nonempty;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i > 0) {
        ASSERT_TRUE(path[i].via_link.valid());
        const Link& link = topo.link(path[i].via_link);
        EXPECT_TRUE(link.a.router == path[i].router ||
                    link.b.router == path[i].router);
        EXPECT_TRUE(link.a.router == path[i - 1].router ||
                    link.b.router == path[i - 1].router);
        EXPECT_GE(path[i].cumulative_ms, path[i - 1].cumulative_ms);
      }
    }
  }
  EXPECT_GT(nonempty, 100);
}

}  // namespace
}  // namespace cfs
