// Overload control, degradation and reload hardening for the resident
// service (src/serve/server.cpp): connection caps rejecting with a
// structured `overloaded` frame, idle and write-stall (slow-loris)
// timeouts cutting abusive peers, request deadlines shedding stale queued
// work, mid-flight disconnects cancelled silently, corrupt reloads
// leaving the old world serving, and the seeded chaos fleet producing
// zero desyncs. Test names start with "Serve" so the TSan and serve-smoke
// CI stages pick them up (.github/workflows/sanitize.yml).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "io/export.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/handlers.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/trace.h"

namespace cfs {
namespace {

CfsReport build_report(std::uint64_t seed) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = seed;
  config.generator.seed = seed * 977 + 3;
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.6);
  return pipeline.run_cfs(std::move(traces));
}

const CfsReport& shared_report() {
  static const CfsReport report = build_report(11);
  return report;
}

std::string temp_path(const std::string& stem) {
  static std::atomic<int> counter{0};
  return "/tmp/cfs_" + stem + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

JsonValue make_request(const std::string& op, JsonValue::Object extra = {}) {
  extra.emplace("op", op);
  return JsonValue(std::move(extra));
}

std::uint64_t counter_value(const std::string& name) {
  const MetricsSnapshot snap = Trace::metrics();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

double gauge_value(const std::string& name) {
  const MetricsSnapshot snap = Trace::metrics();
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

// Waits until the daemon's seat gauge drops to `want` or below — the way
// a test lets an EOF it just caused actually be processed before relying
// on the freed seat (the registry is in-process and shared).
bool wait_for_connections_at_most(double want, int timeout_ms = 5000) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (gauge_value("serve.connections") <= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return gauge_value("serve.connections") <= want;
}

// Polls the process-wide registry until the named counter has grown by at
// least `want` over `baseline` — the daemon side of these tests runs
// in-process, so the registry is shared.
bool wait_for_counter_delta(const std::string& name, std::uint64_t baseline,
                            std::uint64_t want, int timeout_ms = 5000) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (counter_value(name) - baseline >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return counter_value(name) - baseline >= want;
}

// In-process daemon with full control over ServeOptions (the overload
// knobs are the whole point of this suite).
class OptionsServer {
 public:
  explicit OptionsServer(ServeOptions options,
                         std::shared_ptr<const ServeState> state) {
    if (options.socket_path.empty())
      options.socket_path = temp_path("serve_overload") + ".sock";
    options.install_signal_handlers = false;
    server_ = std::make_unique<Server>(std::move(options), std::move(state));
    thread_ = std::thread([this] { exit_code_ = server_->run(); });
    wait_ready();
  }

  ~OptionsServer() { shutdown_and_join(); }

  [[nodiscard]] const std::string& socket_path() const {
    return server_->socket_path();
  }
  [[nodiscard]] int exit_code() const { return exit_code_; }

  void shutdown_and_join() {
    if (!thread_.joinable()) return;
    // Directly, not via a client: a shutdown request through the socket
    // could itself be rejected by the connection cap under test.
    server_->request_shutdown();
    thread_.join();
  }

 private:
  void wait_ready() {
    for (int attempt = 0; attempt < 400; ++attempt) {
      try {
        // A full round trip, not just connect: proves the daemon seated
        // and served the probe, so the close below is an EOF it will see.
        ServeClient probe;
        probe.connect(socket_path());
        (void)probe.request(JsonValue(
            JsonValue::Object{{"op", JsonValue("ping")}}));
        probe.close();
        // Wait for the probe's seat to be reclaimed — connection-cap
        // tests must start with every seat free.
        wait_for_connections_at_most(0);
        return;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    FAIL() << "daemon never came up on " << socket_path();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

ServeOptions base_options() {
  ServeOptions options;
  options.threads = 2;
  return options;
}

TEST(ServeOverloadTest, ConnectionCapRejectsWithStructuredOverloaded) {
  const std::uint64_t rejected_before = counter_value("serve.rejected");
  ServeOptions options = base_options();
  options.max_connections = 2;
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  // Fill the house and prove both seats are live.
  ServeClient first;
  ServeClient second;
  first.connect(server.socket_path());
  second.connect(server.socket_path());
  ASSERT_TRUE(first.request(make_request("ping")).at("ok").as_bool());
  ASSERT_TRUE(second.request(make_request("ping")).at("ok").as_bool());

  // The third connection is accepted at the kernel, answered with one
  // unsolicited structured rejection frame, and closed — never silently
  // dropped. (No request is sent: the daemon closes right after the
  // rejection, so a write would race EPIPE.)
  ServeClient third;
  third.connect(server.socket_path());
  auto rejection = third.read_response();
  ASSERT_TRUE(rejection.has_value()) << "rejected connection sent no frame";
  EXPECT_FALSE(rejection->at("ok").as_bool());
  EXPECT_EQ(rejection->at("error").at("code").as_string(), "overloaded");
  EXPECT_NE(rejection->at("error").at("message").as_string().find("2"),
            std::string::npos);
  auto eof = third.read_response();
  EXPECT_FALSE(eof.has_value());
  EXPECT_GE(counter_value("serve.rejected") - rejected_before, 1u);

  // The seated clients never noticed.
  EXPECT_TRUE(first.request(make_request("ping")).at("ok").as_bool());
  EXPECT_TRUE(second.request(make_request("ping")).at("ok").as_bool());

  // A seat freed is a seat reusable.
  first.close();
  ASSERT_TRUE(wait_for_connections_at_most(1));
  ServeClient fourth;
  fourth.connect(server.socket_path());
  EXPECT_TRUE(fourth.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServeOverloadTest, IdleTimeoutClosesQuietConnections) {
  const std::uint64_t idle_before = counter_value("serve.timeouts.idle");
  ServeOptions options = base_options();
  options.idle_timeout_ms = 150;
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  ServeClient client;
  client.connect(server.socket_path());
  ASSERT_TRUE(client.request(make_request("ping")).at("ok").as_bool());

  // Go quiet: the daemon owes us nothing and we send nothing. It must
  // reclaim the connection on its own (read_response returns EOF), not
  // hold the fd forever.
  const auto start = std::chrono::steady_clock::now();
  auto eof = client.read_response();
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(eof.has_value());
  EXPECT_LT(waited.count(), 5000);
  EXPECT_GE(counter_value("serve.timeouts.idle") - idle_before, 1u);
}

TEST(ServeOverloadTest, WriteStallTimeoutCutsPeerThatStopsReading) {
  const std::uint64_t stall_before =
      counter_value("serve.timeouts.write_stall");
  ServeOptions options = base_options();
  options.write_stall_timeout_ms = 200;
  options.send_buffer_bytes = 1;  // kernel clamps to its minimum
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  // Slow-loris receiver: pipeline far more response bytes than the
  // (minimum) send buffer holds, then refuse to read.
  ServeClient client;
  client.connect(server.socket_path());
  constexpr int kBurst = 256;
  std::string burst;
  for (int i = 0; i < kBurst; ++i)
    burst += encode_frame(
        make_request("ping", {{"id", JsonValue(std::int64_t{i})}}).dump());
  client.send_bytes(burst);

  ASSERT_TRUE(wait_for_counter_delta("serve.timeouts.write_stall",
                                     stall_before, 1))
      << "daemon never cut the stalled reader";

  // The cut is visible client-side: reading everything back fails before
  // all kBurst responses arrive (the daemon dropped the undelivered rest).
  int delivered = 0;
  try {
    for (; delivered < kBurst; ++delivered) {
      if (!client.read_response().has_value()) break;
    }
  } catch (const std::exception&) {
    // ECONNRESET instead of orderly EOF: equally fine, the peer was cut.
  }
  EXPECT_LT(delivered, kBurst);

  // The daemon itself is unharmed.
  ServeClient fresh;
  fresh.connect(server.socket_path());
  EXPECT_TRUE(fresh.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServeOverloadTest, RequestDeadlineShedsStaleQueuedWorkInOrder) {
  const std::uint64_t shed_before = counter_value("serve.shed");
  ServeOptions options = base_options();
  options.threads = 1;
  options.request_deadline_ms = 50;
  options.debug_ops = true;  // enables the deterministic `sleep` op
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  // One slow request, then five pipelined behind it. By the time the
  // sleep finishes every queued ping is 300ms old — ancient against a
  // 50ms deadline — so each must be shed with its id echoed, in order,
  // without computing anything.
  ServeClient client;
  client.connect(server.socket_path());
  std::string burst = encode_frame(
      make_request("sleep", {{"ms", JsonValue(std::int64_t{300})},
                             {"id", JsonValue(std::int64_t{0})}})
          .dump());
  constexpr int kQueued = 5;
  for (int i = 1; i <= kQueued; ++i)
    burst += encode_frame(
        make_request("ping", {{"id", JsonValue(std::int64_t{i})}}).dump());
  client.send_bytes(burst);

  auto slow = client.read_response();
  ASSERT_TRUE(slow.has_value());
  EXPECT_TRUE(slow->at("ok").as_bool()) << slow->dump();
  EXPECT_EQ(slow->at("id").as_int(), 0);
  for (int i = 1; i <= kQueued; ++i) {
    auto shed = client.read_response();
    ASSERT_TRUE(shed.has_value()) << "connection died at response " << i;
    EXPECT_FALSE(shed->at("ok").as_bool());
    EXPECT_EQ(shed->at("id").as_int(), i) << "shedding reordered responses";
    EXPECT_EQ(shed->at("error").at("code").as_string(), "deadline_exceeded");
  }
  EXPECT_GE(counter_value("serve.shed") - shed_before,
            static_cast<std::uint64_t>(kQueued));

  // A fresh request well inside the deadline still computes normally.
  EXPECT_TRUE(client.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServeOverloadTest, MidFlightDisconnectCancelsWorkSilently) {
  const std::uint64_t cancelled_before = counter_value("serve.cancelled");
  ServeOptions options = base_options();
  options.threads = 1;
  options.debug_ops = true;
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  // A slow request in flight plus two slow ones queued behind it — then
  // the client vanishes. Regression: the daemon used to keep dispatching
  // the queued frames and flush an outbox nobody would ever read. (The
  // queued requests are slow on purpose: the first EPIPE on flush must
  // land while work is still queued, proving queued work is dropped.)
  {
    ServeClient doomed;
    doomed.connect(server.socket_path());
    std::string burst;
    for (int i = 0; i < 3; ++i)
      burst += encode_frame(
          make_request("sleep", {{"ms", JsonValue(std::int64_t{200})},
                                 {"id", JsonValue(std::int64_t{i})}})
              .dump());
    doomed.send_bytes(burst);
    doomed.close();  // mid-flight: the first sleep is still computing
  }

  // When the first response hits the closed socket (EPIPE), the in-flight
  // request and the still-queued one are cancelled together: counted,
  // never computed, nothing logged, no crash.
  EXPECT_TRUE(wait_for_counter_delta("serve.cancelled", cancelled_before, 2));

  ServeClient fresh;
  fresh.connect(server.socket_path());
  EXPECT_TRUE(fresh.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServeReloadTest, CorruptMissingAndPartialFilesKeepOldWorldServing) {
  const std::uint64_t failed_before = counter_value("serve.reload_failed");
  OptionsServer server(base_options(),
                       ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  client.connect(server.socket_path());

  const auto expect_reload_failure = [&](const std::string& path) {
    const JsonValue response = client.request(
        make_request("reload", {{"report", JsonValue(path)}}));
    ASSERT_FALSE(response.at("ok").as_bool()) << response.dump();
    EXPECT_EQ(response.at("error").at("code").as_string(), "reload_failed");
    // The structured error names the failing path — an operator juggling
    // snapshot directories needs to know *which* file was bad.
    EXPECT_NE(response.at("error").at("message").as_string().find(path),
              std::string::npos)
        << response.dump();
  };

  // (1) Missing file.
  expect_reload_failure("/nonexistent/report.json");
  // (2) Corrupt file: not JSON at all.
  const std::string corrupt = temp_path("corrupt") + ".json";
  {
    std::ofstream file(corrupt);
    file << "this is not json {{{";
  }
  expect_reload_failure(corrupt);
  // (3) Partially-written file: a truncated prefix of a valid report,
  // exactly what a torn non-atomic writer leaves behind.
  const std::string partial = temp_path("partial") + ".json";
  {
    std::ostringstream whole;
    write_report(whole, shared_report());
    const std::string full = whole.str();
    std::ofstream file(partial);
    file << full.substr(0, full.size() / 2);
  }
  expect_reload_failure(partial);

  EXPECT_GE(counter_value("serve.reload_failed") - failed_before, 3u);

  // Through all three failures the old world never stopped serving.
  const JsonValue ping = client.request(make_request("ping"));
  ASSERT_TRUE(ping.at("ok").as_bool());
  EXPECT_EQ(ping.at("result").at("generation").as_int(), 0);

  // And a good file still swaps in afterwards.
  const std::string good = temp_path("good") + ".json";
  write_report_file(good, shared_report());
  const JsonValue reloaded = client.request(
      make_request("reload", {{"report", JsonValue(good)}}));
  ASSERT_TRUE(reloaded.at("ok").as_bool()) << reloaded.dump();
  EXPECT_EQ(reloaded.at("result").at("generation").as_int(), 1);
}

TEST(ServeReloadTest, AtomicReportWriteLeavesNoTempAndAlwaysParses) {
  const std::string path = temp_path("atomic") + ".json";
  // Two writes through the atomic path: the second replaces the first by
  // rename, and no ".tmp" sibling survives either.
  write_report_file(path, shared_report());
  write_report_file(path, shared_report());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file leaked by atomic write";

  // The written file is a complete, loadable report.
  const auto state = ServeState::from_file(path, 3);
  EXPECT_EQ(state->generation, 3u);
  EXPECT_EQ(state->report.interfaces.size(),
            shared_report().interfaces.size());
}

TEST(ServeClientTimeoutTest, ReadDeadlineThrowsClientTimeoutError) {
  // A listener that accepts and then plays dead: the timeout client must
  // bail out with the distinct timeout type (exit 5 in the CLI), not hang.
  const std::string path = temp_path("dead_daemon") + ".sock";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  ASSERT_EQ(bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)),
            0)
      << strerror(errno);
  ASSERT_EQ(listen(listener, 8), 0);

  ServeClient client;
  client.set_timeout_ms(150);
  client.connect(path);  // accepted by the backlog; nobody will answer
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.request(JsonValue(JsonValue::Object{
                   {"op", JsonValue("ping")}})),
               ClientTimeoutError);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(waited.count(), 100);
  EXPECT_LT(waited.count(), 5000);
  close(listener);
  unlink(path.c_str());
}

TEST(ServeChaosTest, SeededChaosFleetProducesZeroDesyncs) {
  ServeOptions options = base_options();
  options.threads = 4;
  options.idle_timeout_ms = 2000;  // generous: chaos stalls are ~10ms
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  // Expected answers straight from the canonical export — the same bytes
  // batch `cfs infer --report` would have written.
  const JsonValue exported = report_to_json(shared_report());
  std::vector<ChaosExpectation> lookups;
  for (const JsonValue& entry : exported.at("interfaces").as_array())
    lookups.push_back({entry.at("address").as_string(), entry.dump()});
  ASSERT_FALSE(lookups.empty());
  lookups.push_back({"203.0.113.250", "absent"});  // a guaranteed miss

  ChaosConfig config;
  config.socket_path = server.socket_path();
  config.clients = 8;
  config.requests_per_client = 60;
  config.seed = 20260809;
  config.plan.byte_write_fraction = 0.2;
  config.plan.torn_frame_fraction = 0.15;
  config.plan.disconnect_fraction = 0.1;
  config.plan.stall_fraction = 0.05;
  config.plan.stall_ms = 10.0;
  config.plan.read_stall_fraction = 0.05;

  const ChaosStats stats = run_chaos_clients(config, lookups);
  EXPECT_EQ(stats.desyncs, 0u) << "daemon produced a wrong or torn answer";
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_GT(stats.ok, 0u);
  EXPECT_GT(stats.torn, 0u) << "15% tear rate never fired; plan inert?";
  EXPECT_GT(stats.disconnected, 0u);
  // Outcome accounting is total: every attempt is classified exactly once.
  EXPECT_EQ(stats.attempted, stats.ok + stats.shed + stats.torn +
                                 stats.disconnected + stats.cut +
                                 stats.desyncs + stats.transport_errors);
  // Every validated answer was byte-identical, so the latency vector
  // matches the ok count.
  EXPECT_EQ(stats.ok_latency_ms.size(), stats.ok);
}

TEST(ServeChaosTest, FloodAgainstConnectionCapShedsButNeverDesyncs) {
  ServeOptions options = base_options();
  options.threads = 2;
  options.max_connections = 3;
  options.request_deadline_ms = 2000;
  OptionsServer server(options,
                       ServeState::from_report(shared_report(), "pipeline", 0));

  const JsonValue exported = report_to_json(shared_report());
  std::vector<ChaosExpectation> lookups;
  for (const JsonValue& entry : exported.at("interfaces").as_array())
    lookups.push_back({entry.at("address").as_string(), entry.dump()});
  ASSERT_FALSE(lookups.empty());

  // 10 clients against 3 seats, churning connections (disconnects force
  // reconnect pressure): rejected connects surface as `overloaded` sheds
  // or cuts, and every answer that does land is still byte-perfect.
  ChaosConfig config;
  config.socket_path = server.socket_path();
  config.clients = 10;
  config.requests_per_client = 30;
  config.seed = 7;
  config.plan.disconnect_fraction = 0.3;

  const ChaosStats stats = run_chaos_clients(config, lookups);
  EXPECT_EQ(stats.desyncs, 0u);
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_GT(stats.ok, 0u);
  EXPECT_GT(stats.shed + stats.cut, 0u)
      << "10 clients on 3 seats never hit the cap";
}

}  // namespace
}  // namespace cfs
