// Framing-layer edge cases for the serve protocol (src/serve/protocol.h):
// byte-at-a-time reassembly, several frames per feed, zero-length and
// oversized frames, and stream realignment after an oversized skip. These
// are the properties the daemon's liveness depends on — a decoder that
// buffers an oversized payload or desyncs after one is a remote crash.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace cfs {
namespace {

std::string frame_for(std::string_view payload) {
  return encode_frame(payload);
}

TEST(ServeProtocolTest, EncodeFramePrefixesBigEndianLength) {
  const std::string framed = frame_for("abc");
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(framed[0], '\0');
  EXPECT_EQ(framed[1], '\0');
  EXPECT_EQ(framed[2], '\0');
  EXPECT_EQ(framed[3], '\x03');
  EXPECT_EQ(framed.substr(4), "abc");
}

TEST(ServeProtocolTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.feed(frame_for("{\"op\":\"ping\"}"));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Frame::Kind::Payload);
  EXPECT_EQ(frame->payload, "{\"op\":\"ping\"}");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.idle());
}

TEST(ServeProtocolTest, PartialReadsByteAtATime) {
  // The strictest split: every byte of header and payload arrives alone.
  FrameDecoder decoder;
  const std::string framed = frame_for("hello world");
  for (std::size_t i = 0; i < framed.size(); ++i) {
    if (i + 1 < framed.size()) {
      decoder.feed(framed.data() + i, 1);
      EXPECT_FALSE(decoder.next().has_value()) << "premature frame at " << i;
      EXPECT_FALSE(decoder.idle());
    } else {
      decoder.feed(framed.data() + i, 1);
    }
  }
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "hello world");
  EXPECT_TRUE(decoder.idle());
}

TEST(ServeProtocolTest, HeaderSplitAcrossFeeds) {
  FrameDecoder decoder;
  const std::string framed = frame_for("x");
  decoder.feed(framed.substr(0, 2));  // half a header
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(framed.substr(2));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "x");
}

TEST(ServeProtocolTest, MultipleFramesInOneFeed) {
  FrameDecoder decoder;
  decoder.feed(frame_for("one") + frame_for("two") + frame_for("three"));
  const char* expected[] = {"one", "two", "three"};
  for (const char* want : expected) {
    auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->kind, Frame::Kind::Payload);
    EXPECT_EQ(frame->payload, want);
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocolTest, ZeroLengthFrameSurfacesAsEmptyKind) {
  FrameDecoder decoder;
  decoder.feed(std::string(kFrameHeaderBytes, '\0'));  // length 0
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Frame::Kind::Empty);
  // The stream stays aligned: a normal frame right after still decodes.
  decoder.feed(frame_for("after"));
  auto after = decoder.next();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->payload, "after");
}

TEST(ServeProtocolTest, OversizedFrameSurfacesImmediatelyWithoutBuffering) {
  FrameDecoder decoder(16);  // tiny cap for the test
  // Declare 1000 bytes; the error must surface as soon as the header is
  // read, before any payload arrives.
  const std::string header = {'\0', '\0', '\x03', '\xe8'};
  decoder.feed(header);
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Frame::Kind::Oversized);
  EXPECT_EQ(frame->declared_bytes, 1000u);
}

TEST(ServeProtocolTest, StreamRealignsAfterOversizedPayloadIsSkipped) {
  FrameDecoder decoder(8);
  const std::string big(100, 'z');
  decoder.feed(frame_for(big) + frame_for("ok"));
  auto oversized = decoder.next();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_EQ(oversized->kind, Frame::Kind::Oversized);
  EXPECT_EQ(oversized->declared_bytes, 100u);
  auto after = decoder.next();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->kind, Frame::Kind::Payload);
  EXPECT_EQ(after->payload, "ok");
  EXPECT_TRUE(decoder.idle());
}

TEST(ServeProtocolTest, OversizedSkipSpansManyFeeds) {
  FrameDecoder decoder(4);
  const std::string big(64, 'q');
  const std::string stream = frame_for(big) + frame_for("next");
  for (char byte : stream) decoder.feed(&byte, 1);
  auto oversized = decoder.next();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_EQ(oversized->kind, Frame::Kind::Oversized);
  auto after = decoder.next();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->payload, "next");
}

TEST(ServeProtocolTest, FrameAtExactCapIsAccepted) {
  FrameDecoder decoder(5);
  decoder.feed(frame_for("12345"));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Frame::Kind::Payload);
  EXPECT_EQ(frame->payload, "12345");
}

TEST(ServeProtocolTest, OkResponseShape) {
  JsonValue::Object result;
  result.emplace("value", 42);
  const JsonValue response =
      ok_response(JsonValue(std::int64_t{7}), "lookup",
                  JsonValue(std::move(result)));
  EXPECT_EQ(response.at("id").as_int(), 7);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("op").as_string(), "lookup");
  EXPECT_EQ(response.at("result").at("value").as_int(), 42);
}

TEST(ServeProtocolTest, ErrorResponseShapeAndNullId) {
  const JsonValue response =
      error_response(JsonValue(nullptr), "bad_json", "parse failed");
  EXPECT_TRUE(response.at("id").is_null());
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").at("code").as_string(), "bad_json");
  EXPECT_EQ(response.at("error").at("message").as_string(), "parse failed");
}

}  // namespace
}  // namespace cfs
