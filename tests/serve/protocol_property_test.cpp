// Generative properties of the serve framing layer: however the byte
// stream is sliced — byte-at-a-time, random partial writes, a frame split
// across 1000 reads — the decoder reconstructs the identical frame
// sequence it would have produced from one contiguous feed. This is the
// transport-level guarantee the SocketFaultPlane chaos clients rely on:
// delivery schedule must never change decoded content.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/rng.h"

namespace cfs {
namespace {

struct DecodedFrame {
  Frame::Kind kind;
  std::string payload;
};

// Feeds `stream` to a fresh decoder in the given chunk sizes and drains
// every available frame after each feed (the daemon's read loop shape).
std::vector<DecodedFrame> decode_chunked(const std::string& stream,
                                         const std::vector<std::size_t>& cuts,
                                         std::size_t max_frame = 1 << 20) {
  FrameDecoder decoder(max_frame);
  std::vector<DecodedFrame> frames;
  std::size_t offset = 0;
  for (const std::size_t cut : cuts) {
    decoder.feed(stream.data() + offset, cut);
    offset += cut;
    while (auto frame = decoder.next())
      frames.push_back({frame->kind, std::move(frame->payload)});
  }
  EXPECT_EQ(offset, stream.size()) << "cuts do not partition the stream";
  return frames;
}

std::vector<std::size_t> random_partition(Rng& rng, std::size_t total) {
  std::vector<std::size_t> cuts;
  std::size_t left = total;
  while (left > 0) {
    const std::size_t cut =
        1 + static_cast<std::size_t>(rng.uniform(std::min<std::uint64_t>(
                left, 97)));
    cuts.push_back(std::min(cut, left));
    left -= cuts.back();
  }
  return cuts;
}

std::string random_payload(Rng& rng, std::size_t max_len) {
  const std::size_t len = static_cast<std::size_t>(rng.uniform(max_len + 1));
  std::string payload(len, '\0');
  for (char& c : payload)
    c = static_cast<char>(rng.uniform(256));  // full byte alphabet
  return payload;
}

void expect_same_frames(const std::vector<DecodedFrame>& a,
                        const std::vector<DecodedFrame>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << what << " frame " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << what << " frame " << i;
  }
}

TEST(ServeProtocolPropertyTest, ChunkingNeverChangesDecodedFrames) {
  Rng rng(20260801);
  for (int round = 0; round < 50; ++round) {
    // A stream of several frames with arbitrary binary payloads,
    // zero-length frames included.
    std::string stream;
    const int frames = 1 + static_cast<int>(rng.uniform(6));
    for (int f = 0; f < frames; ++f)
      stream += encode_frame(random_payload(rng, 700));

    const std::vector<std::size_t> whole{stream.size()};
    const auto reference = decode_chunked(stream, whole);

    // Byte-at-a-time delivery.
    const std::vector<std::size_t> bytes(stream.size(), 1);
    expect_same_frames(reference, decode_chunked(stream, bytes),
                       "byte-at-a-time");

    // Three independent random partitions (partial writes).
    for (int p = 0; p < 3; ++p) {
      const auto cuts = random_partition(rng, stream.size());
      expect_same_frames(reference, decode_chunked(stream, cuts),
                         "random partition");
    }
  }
}

TEST(ServeProtocolPropertyTest, FrameSplitAcrossAThousandReads) {
  // One large frame delivered in exactly 1000 reads: no premature frame,
  // then the payload intact on the final read.
  Rng rng(77);
  std::string payload(4096, '\0');
  for (char& c : payload) c = static_cast<char>(rng.uniform(256));
  const std::string framed = encode_frame(payload);
  ASSERT_GT(framed.size(), 1000u);

  // Partition into exactly 1000 non-empty cuts.
  std::vector<std::size_t> cuts(1000, framed.size() / 1000);
  std::size_t assigned = (framed.size() / 1000) * 1000;
  for (std::size_t i = 0; assigned < framed.size(); ++i, ++assigned)
    cuts[i] += 1;

  FrameDecoder decoder(1 << 20);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    decoder.feed(framed.data() + offset, cuts[i]);
    offset += cuts[i];
    if (i + 1 < cuts.size())
      EXPECT_FALSE(decoder.next().has_value())
          << "frame surfaced early at read " << i;
  }
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Frame::Kind::Payload);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_TRUE(decoder.idle());
}

TEST(ServeProtocolPropertyTest, OversizedAndEmptyFramesSurviveAnyChunking) {
  // Oversized skip followed by a good frame must realign identically no
  // matter how the bytes arrive.
  const std::size_t cap = 64;
  std::string big_payload(cap + 10, 'x');
  std::string stream;
  {
    // Hand-build the oversized frame (encode_frame has no cap, the
    // decoder does).
    const std::uint32_t len = static_cast<std::uint32_t>(big_payload.size());
    stream.push_back(static_cast<char>((len >> 24) & 0xff));
    stream.push_back(static_cast<char>((len >> 16) & 0xff));
    stream.push_back(static_cast<char>((len >> 8) & 0xff));
    stream.push_back(static_cast<char>(len & 0xff));
    stream += big_payload;
  }
  stream += encode_frame("");          // zero-length frame
  stream += encode_frame("recovered");

  const auto reference = decode_chunked(stream, {stream.size()}, cap);
  Rng rng(5150);
  for (int p = 0; p < 20; ++p) {
    const auto cuts = random_partition(rng, stream.size());
    const auto got = decode_chunked(stream, cuts, cap);
    expect_same_frames(reference, got, "oversized+empty partition");
  }
  // And the reference itself is sane: skip, empty, payload.
  ASSERT_EQ(reference.size(), 3u);
  EXPECT_EQ(reference[0].kind, Frame::Kind::Oversized);
  EXPECT_EQ(reference[1].kind, Frame::Kind::Empty);
  EXPECT_EQ(reference[2].kind, Frame::Kind::Payload);
  EXPECT_EQ(reference[2].payload, "recovered");
}

}  // namespace
}  // namespace cfs
