// End-to-end tests for the resident inference service (src/serve/):
// a real Server on a real Unix socket, driven by ServeClient.
//
// The acceptance bar from the service's design: answers byte-identical
// to the batch export under >= 8 concurrent clients, a reload swapping
// worlds mid-traffic without tearing a single response, and malformed
// frames answered with structured errors on a connection that stays
// usable. Test names start with "Serve" so the TSan CI stage picks them
// up (.github/workflows/sanitize.yml).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "io/export.h"
#include "serve/client.h"
#include "serve/handlers.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace cfs {
namespace {

CfsReport build_report(std::uint64_t seed) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = seed;
  config.generator.seed = seed * 977 + 3;
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.6);
  return pipeline.run_cfs(std::move(traces));
}

// The world every basic test serves; built once, the pipeline run is the
// expensive part of this suite.
const CfsReport& shared_report() {
  static const CfsReport report = build_report(11);
  return report;
}

std::string temp_path(const std::string& stem) {
  static std::atomic<int> counter{0};
  return "/tmp/cfs_" + stem + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

JsonValue make_request(const std::string& op, JsonValue::Object extra = {}) {
  extra.emplace("op", op);
  return JsonValue(std::move(extra));
}

// In-process daemon: run() on its own thread, joined by a shutdown
// request (or by the test itself shutting down through a client).
class TestServer {
 public:
  explicit TestServer(std::shared_ptr<const ServeState> state,
                      std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                      int threads = 4) {
    ServeOptions options;
    options.socket_path = temp_path("serve") + ".sock";
    options.threads = threads;
    options.max_frame_bytes = max_frame_bytes;
    options.install_signal_handlers = false;  // the test runner owns signals
    server_ = std::make_unique<Server>(std::move(options), std::move(state));
    thread_ = std::thread([this] { exit_code_ = server_->run(); });
    wait_ready();
  }

  ~TestServer() { shutdown_and_join(); }

  [[nodiscard]] const std::string& socket_path() const {
    return server_->socket_path();
  }
  [[nodiscard]] int exit_code() const { return exit_code_; }
  [[nodiscard]] bool joined() const { return joined_; }

  void connect(ServeClient& client) { client.connect(socket_path()); }

  void shutdown_and_join() {
    if (!thread_.joinable()) return;
    if (!joined_) {
      try {
        ServeClient client;
        client.connect(socket_path());
        (void)client.request(make_request("shutdown"));
      } catch (const std::exception&) {
        // Already draining (a test sent its own shutdown) — fine.
      }
    }
    thread_.join();
    joined_ = true;
  }

 private:
  void wait_ready() {
    for (int attempt = 0; attempt < 400; ++attempt) {
      try {
        ServeClient probe;
        probe.connect(socket_path());
        return;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    FAIL() << "daemon never came up on " << socket_path();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
  bool joined_ = false;
};

TEST(ServeTest, PingReportsWorldAndProtocol) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  server.connect(client);

  const JsonValue response = client.request(make_request("ping"));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  const JsonValue& result = response.at("result");
  EXPECT_EQ(result.at("protocol").as_int(), kServeProtocolVersion);
  EXPECT_EQ(result.at("generation").as_int(), 0);
  EXPECT_EQ(result.at("source").as_string(), "pipeline");
  EXPECT_EQ(result.at("interfaces").as_int(),
            static_cast<std::int64_t>(shared_report().interfaces.size()));
}

TEST(ServeTest, LookupMatchesBatchExportByteForByte) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  const JsonValue exported = report_to_json(shared_report());
  const auto& interfaces = exported.at("interfaces").as_array();
  ASSERT_FALSE(interfaces.empty());

  ServeClient client;
  server.connect(client);
  for (const JsonValue& entry : interfaces) {
    const std::string& address = entry.at("address").as_string();
    const JsonValue response = client.request(
        make_request("lookup", {{"ip", JsonValue(address)}}));
    ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
    const JsonValue& result = response.at("result");
    ASSERT_TRUE(result.at("found").as_bool()) << address;
    // The served entry must be the canonical export entry, byte for byte.
    EXPECT_EQ(result.at("interface").dump(), entry.dump()) << address;
  }
}

TEST(ServeTest, LookupUnknownAddressIsOkButNotFound) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  server.connect(client);
  const JsonValue response =
      client.request(make_request("lookup", {{"ip", JsonValue("0.0.0.1")}}));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_FALSE(response.at("result").at("found").as_bool());
  EXPECT_TRUE(response.at("result").at("facility").is_null());

  const JsonValue bad =
      client.request(make_request("lookup", {{"ip", JsonValue("not-an-ip")}}));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "bad_param");
}

TEST(ServeTest, PeersAtAgreesWithExportedReport) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  const JsonValue exported = report_to_json(shared_report());

  // Pick the facility with the most pinned members, computed from the
  // export the same way the handler defines membership.
  std::map<std::int64_t, std::vector<std::string>> members_by_facility;
  for (const JsonValue& entry : exported.at("interfaces").as_array()) {
    if (!entry.at("has_constraint").as_bool()) continue;
    if (entry.at("candidates").size() != 1) continue;
    members_by_facility[entry.at("candidates").at(0).as_int()].push_back(
        entry.dump());
  }
  ASSERT_FALSE(members_by_facility.empty())
      << "tiny world resolved nothing; test needs a richer seed";
  std::int64_t facility = members_by_facility.begin()->first;
  for (const auto& [candidate, members] : members_by_facility)
    if (members.size() >
        members_by_facility[facility].size())
      facility = candidate;

  ServeClient client;
  server.connect(client);
  const JsonValue response = client.request(make_request(
      "peers_at", {{"facility", JsonValue(facility)}}));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  const auto& members = response.at("result").at("members").as_array();
  const auto& expected = members_by_facility[facility];
  ASSERT_EQ(members.size(), expected.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    EXPECT_EQ(members[i].dump(), expected[i]);
}

TEST(ServeTest, DiffAgainstOwnSnapshotIsIdentical) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  const std::string snapshot = temp_path("snapshot") + ".json";
  write_report_file(snapshot, shared_report());

  ServeClient client;
  server.connect(client);
  const JsonValue same = client.request(
      make_request("diff", {{"snapshot", JsonValue(snapshot)}}));
  ASSERT_TRUE(same.at("ok").as_bool()) << same.dump();
  EXPECT_TRUE(same.at("result").at("identical").as_bool());
  EXPECT_EQ(same.at("result").at("total").as_int(), 0);

  // A different world must differ, and the unreadable-file failure mode
  // is a structured error, not a dropped connection.
  const std::string other = temp_path("snapshot") + ".json";
  write_report_file(other, build_report(12));
  const JsonValue differs = client.request(
      make_request("diff", {{"snapshot", JsonValue(other)}}));
  ASSERT_TRUE(differs.at("ok").as_bool()) << differs.dump();
  EXPECT_FALSE(differs.at("result").at("identical").as_bool());
  EXPECT_GT(differs.at("result").at("total").as_int(), 0);

  const JsonValue unreadable = client.request(make_request(
      "diff", {{"snapshot", JsonValue("/nonexistent/snapshot.json")}}));
  EXPECT_FALSE(unreadable.at("ok").as_bool());
  EXPECT_EQ(unreadable.at("error").at("code").as_string(),
            "snapshot_unreadable");
  EXPECT_TRUE(client.request(make_request("ping")).at("ok").as_bool());
}

TEST(ServeTest, MetricsWindowResetsBetweenQueries) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  server.connect(client);

  const JsonValue first = client.request(make_request("metrics"));
  ASSERT_TRUE(first.at("ok").as_bool());
  ASSERT_TRUE(first.at("result").at("registry").at("counters").is_object());

  // A known amount of traffic between the two metrics queries: the window
  // must report exactly those pings (plus this second metrics query).
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(client.request(make_request("ping")).at("ok").as_bool());
  const JsonValue second = client.request(make_request("metrics"));
  ASSERT_TRUE(second.at("ok").as_bool());
  const JsonValue& window = second.at("result").at("window").at("counters");
  ASSERT_NE(window.find("serve.query.ping"), nullptr) << second.dump();
  EXPECT_EQ(window.at("serve.query.ping").as_int(), 5);
}

TEST(ServeTest, EightConcurrentClientsGetByteIdenticalAnswers) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  const JsonValue exported = report_to_json(shared_report());
  const auto& interfaces = exported.at("interfaces").as_array();
  ASSERT_FALSE(interfaces.empty());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ServeClient client;
        client.connect(server.socket_path());
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const JsonValue& entry =
              interfaces[(static_cast<std::size_t>(c) * 31 + i) %
                         interfaces.size()];
          const JsonValue response = client.request(make_request(
              "lookup", {{"ip", entry.at("address")},
                         {"id", JsonValue(std::int64_t{i})}}));
          if (!response.at("ok").as_bool() ||
              response.at("id").as_int() != i ||
              response.at("result").at("interface").dump() != entry.dump())
            mismatches.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeTest, PipelinedRequestsAnsweredStrictlyInOrder) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  server.connect(client);

  // Send a burst of frames before reading anything; responses must come
  // back in request order (one in-flight request per connection).
  constexpr int kBurst = 16;
  std::string burst;
  for (int i = 0; i < kBurst; ++i)
    burst += encode_frame(
        make_request("ping", {{"id", JsonValue(std::int64_t{i})}}).dump());
  client.send_bytes(burst);
  for (int i = 0; i < kBurst; ++i) {
    auto response = client.read_response();
    ASSERT_TRUE(response.has_value()) << "connection closed at " << i;
    EXPECT_TRUE(response->at("ok").as_bool());
    EXPECT_EQ(response->at("id").as_int(), i);
  }
}

TEST(ServeTest, ReloadMidTrafficNeverTearsAResponse) {
  // Two worlds: generation parity says which one must have answered.
  const CfsReport world_a = shared_report();
  const CfsReport world_b = build_report(12);
  const std::string path_a = temp_path("world_a") + ".json";
  const std::string path_b = temp_path("world_b") + ".json";
  write_report_file(path_a, world_a);
  write_report_file(path_b, world_b);

  const JsonValue exported_a = report_to_json(world_a);
  const JsonValue exported_b = report_to_json(world_b);
  const auto& interfaces_a = exported_a.at("interfaces").as_array();
  ASSERT_FALSE(interfaces_a.empty());
  const std::string probe_ip =
      interfaces_a.front().at("address").as_string();
  // What a correct answer looks like in each world, for the probed ip.
  std::map<std::string, std::string> expected_by_world;
  expected_by_world["a"] = interfaces_a.front().dump();
  std::string expected_b = "absent";
  for (const JsonValue& entry : exported_b.at("interfaces").as_array())
    if (entry.at("address").as_string() == probe_ip)
      expected_b = entry.dump();
  expected_by_world["b"] = expected_b;

  TestServer server(ServeState::from_report(world_a, "pipeline", 0));

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 4; ++c) {
    readers.emplace_back([&] {
      try {
        ServeClient client;
        client.connect(server.socket_path());
        while (!stop.load()) {
          const JsonValue response = client.request(
              make_request("lookup", {{"ip", JsonValue(probe_ip)}}));
          if (!response.at("ok").as_bool()) {
            torn.fetch_add(1);
            continue;
          }
          const JsonValue& result = response.at("result");
          // Even generations are world A (initial load + every second
          // reload), odd generations world B.
          const bool is_a = result.at("generation").as_int() % 2 == 0;
          const std::string& expected =
              expected_by_world[is_a ? "a" : "b"];
          const std::string got = result.at("found").as_bool()
                                      ? result.at("interface").dump()
                                      : std::string("absent");
          if (got != expected) torn.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }

  {
    ServeClient admin;
    server.connect(admin);
    for (int round = 0; round < 6; ++round) {
      const bool to_b = round % 2 == 0;  // gen 1,3,5 = B; gen 2,4,6 = A
      const JsonValue response = admin.request(make_request(
          "reload", {{"report", JsonValue(to_b ? path_b : path_a)}}));
      ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
      EXPECT_EQ(response.at("result").at("generation").as_int(), round + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(torn.load(), 0);
}

TEST(ServeTest, MalformedFramesGetStructuredErrorsAndConnectionSurvives) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0),
                    /*max_frame_bytes=*/256);
  ServeClient client;
  server.connect(client);

  // Malformed JSON payload.
  client.send_bytes(encode_frame("{\"op\": nope"));
  auto bad_json = client.read_response();
  ASSERT_TRUE(bad_json.has_value());
  EXPECT_FALSE(bad_json->at("ok").as_bool());
  EXPECT_EQ(bad_json->at("error").at("code").as_string(), "bad_json");

  // Zero-length frame.
  client.send_bytes(std::string(kFrameHeaderBytes, '\0'));
  auto empty = client.read_response();
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->at("ok").as_bool());
  EXPECT_EQ(empty->at("error").at("code").as_string(), "empty_frame");

  // Oversized frame: declared way past the 256-byte cap. The daemon must
  // answer with an error — not buffer it, not drop the connection.
  client.send_bytes(encode_frame(std::string(4096, 'x')));
  auto oversized = client.read_response();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_FALSE(oversized->at("ok").as_bool());
  EXPECT_EQ(oversized->at("error").at("code").as_string(),
            "frame_too_large");

  // Unknown op and a non-object request are request-level errors.
  client.send_bytes(encode_frame("{\"op\":\"frobnicate\"}"));
  auto unknown = client.read_response();
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->at("error").at("code").as_string(), "unknown_op");
  client.send_bytes(encode_frame("[1,2,3]"));
  auto non_object = client.read_response();
  ASSERT_TRUE(non_object.has_value());
  EXPECT_EQ(non_object->at("error").at("code").as_string(), "bad_request");

  // After all that abuse the connection still answers real queries.
  const JsonValue ping = client.request(make_request("ping"));
  EXPECT_TRUE(ping.at("ok").as_bool());
}

TEST(ServeTest, ShutdownDrainsAndRunReturnsZero) {
  TestServer server(ServeState::from_report(shared_report(), "pipeline", 0));
  ServeClient client;
  server.connect(client);

  const JsonValue response = client.request(make_request("shutdown"));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("result").at("stopping").as_bool());

  // The daemon flushes the response, then closes: next read is EOF.
  auto eof = client.read_response();
  EXPECT_FALSE(eof.has_value());

  server.shutdown_and_join();
  EXPECT_EQ(server.exit_code(), 0);
  // The socket file is gone after a clean drain; a fresh connect fails.
  ServeClient late;
  EXPECT_THROW(late.connect(server.socket_path()), std::runtime_error);
}

}  // namespace
}  // namespace cfs
