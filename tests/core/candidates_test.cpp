#include "core/candidates.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

std::vector<FacilityId> facs(std::initializer_list<std::uint32_t> ids) {
  std::vector<FacilityId> out;
  for (const auto id : ids) out.emplace_back(id);
  return out;
}

TEST(Candidates, IntersectionBasics) {
  EXPECT_EQ(facility_intersection(facs({1, 2, 5}), facs({2, 3, 5})),
            facs({2, 5}));
  EXPECT_TRUE(facility_intersection(facs({1}), facs({2})).empty());
  EXPECT_TRUE(facility_intersection({}, facs({1})).empty());
}

TEST(Candidates, SubsetBasics) {
  EXPECT_TRUE(facility_subset(facs({2, 5}), facs({1, 2, 5})));
  EXPECT_TRUE(facility_subset({}, facs({1})));
  EXPECT_FALSE(facility_subset(facs({1, 9}), facs({1, 2, 5})));
}

TEST(Candidates, FirstConstraintAdopted) {
  InterfaceInference inf;
  EXPECT_FALSE(inf.has_constraint);
  EXPECT_TRUE(inf.constrain(facs({1, 2, 5}), 3));
  EXPECT_TRUE(inf.has_constraint);
  EXPECT_FALSE(inf.resolved());
  EXPECT_EQ(inf.resolved_iteration, -1);
}

TEST(Candidates, IntersectionNarrowsToResolution) {
  InterfaceInference inf;
  inf.constrain(facs({2, 5}), 1);       // paper Fig. 5: A.1 -> {f2, f5}
  EXPECT_TRUE(inf.constrain(facs({1, 2}), 2));  // A.3 -> {f1, f2}
  EXPECT_TRUE(inf.resolved());
  EXPECT_EQ(inf.facility(), FacilityId(2));
  EXPECT_EQ(inf.resolved_iteration, 2);
}

TEST(Candidates, EmptyIntersectionIsConflictNotErasure) {
  InterfaceInference inf;
  inf.constrain(facs({1, 2}), 1);
  EXPECT_FALSE(inf.constrain(facs({7, 8}), 2));
  EXPECT_EQ(inf.candidates, facs({1, 2}));
  EXPECT_EQ(inf.conflicts, 1);
}

TEST(Candidates, EmptyAllowedIsIgnored) {
  InterfaceInference inf;
  EXPECT_FALSE(inf.constrain({}, 1));
  EXPECT_FALSE(inf.has_constraint);
}

TEST(Candidates, RepeatedSameConstraintIsNoop) {
  InterfaceInference inf;
  inf.constrain(facs({1, 2}), 1);
  EXPECT_FALSE(inf.constrain(facs({1, 2}), 2));
  EXPECT_EQ(inf.conflicts, 0);
}

TEST(Candidates, ResolvedIterationRecordedOnFirstConstraintWhenSingleton) {
  InterfaceInference inf;
  inf.constrain(facs({4}), 7);
  EXPECT_TRUE(inf.resolved());
  EXPECT_EQ(inf.resolved_iteration, 7);
}

TEST(Candidates, CityLevelConstraint) {
  testing::MiniNet net;  // fac 0..3 in metro m0, fac 4..5 in m1
  InterfaceInference inf;
  inf.constrain(facs({1, 2, 3}), 1);
  const auto city = inf.city(net.topo);
  ASSERT_TRUE(city.has_value());
  EXPECT_EQ(*city, net.m0);

  InterfaceInference cross_metro;
  cross_metro.constrain(facs({1, 4}), 1);
  EXPECT_FALSE(cross_metro.city(net.topo).has_value());

  InterfaceInference unconstrained;
  EXPECT_FALSE(unconstrained.city(net.topo).has_value());
}

}  // namespace
}  // namespace cfs
