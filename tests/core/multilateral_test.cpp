#include "core/multilateral.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct MultilateralFixture {
  MiniNet net;
  Asn a, e, c;
  LinkId bilateral_link, multilateral_link;
  std::unique_ptr<LookingGlassDirectory> lgs;

  explicit MultilateralFixture(double bgp_lg_probability = 1.0) {
    a = net.add_as(1000, AsType::Transit, {1, 4});
    e = net.add_as(10000, AsType::Eyeball, {3});
    c = net.add_as(5000, AsType::Content, {2});
    Ixp& ixp = net.topo.mutable_ixp(net.ix);
    ixp.has_route_server = true;
    ixp.route_server_asn = Asn(64500);
    ixp.route_server_address = ixp.peering_lan.at(ixp.peering_lan.size() - 2);

    net.join_ixp(a, 1);
    net.join_ixp(e, 3);
    net.join_ixp(c, 2);
    bilateral_link = net.public_peer(a, e, BusinessRel::PeerPeer);
    multilateral_link = net.public_peer(a, c, BusinessRel::PeerPeer);
    // Flag the second session as established via the route server.
    net.topo.mutable_link(multilateral_link).multilateral = true;

    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo,
        LookingGlassDirectory::Config{.host_probability = 1.0,
                                      .bgp_support_probability =
                                          bgp_lg_probability,
                                      .cooldown_s = 60,
                                      .seed = 1});
  }

  PeeringObservation obs_for(LinkId lid) {
    const Link& link = net.topo.link(lid);
    PeeringObservation obs;
    obs.kind = PeeringKind::Public;
    obs.near_addr = net.topo.router(link.a.router).local_address;
    obs.near_as = net.topo.router(link.a.router).owner;
    obs.far_addr = link.b.address;
    obs.far_as = net.topo.router(link.b.router).owner;
    obs.ixp = net.ix;
    return obs;
  }
};

TEST(Multilateral, ClassifiesBilateralSession) {
  MultilateralFixture fx;
  MultilateralInference inference(fx.net.topo, *fx.lgs);
  EXPECT_EQ(inference.classify(fx.obs_for(fx.bilateral_link)),
            SessionKind::Bilateral);
}

TEST(Multilateral, ClassifiesRouteServerSession) {
  MultilateralFixture fx;
  MultilateralInference inference(fx.net.topo, *fx.lgs);
  EXPECT_EQ(inference.classify(fx.obs_for(fx.multilateral_link)),
            SessionKind::Multilateral);
}

TEST(Multilateral, UnknownWithoutBgpLookingGlass) {
  MultilateralFixture fx(/*bgp_lg_probability=*/0.0);
  MultilateralInference inference(fx.net.topo, *fx.lgs);
  EXPECT_EQ(inference.classify(fx.obs_for(fx.bilateral_link)),
            SessionKind::Unknown);
  EXPECT_EQ(inference.bgp_lg_coverage(), 0.0);
}

TEST(Multilateral, PrivateObservationsAreUnknown) {
  MultilateralFixture fx;
  MultilateralInference inference(fx.net.topo, *fx.lgs);
  auto obs = fx.obs_for(fx.bilateral_link);
  obs.kind = PeeringKind::Private;
  EXPECT_EQ(inference.classify(obs), SessionKind::Unknown);
}

TEST(Multilateral, SurveyAggregates) {
  MultilateralFixture fx;
  MultilateralInference inference(fx.net.topo, *fx.lgs);
  const auto stats = inference.survey(
      {fx.obs_for(fx.bilateral_link), fx.obs_for(fx.multilateral_link)});
  EXPECT_EQ(stats.bilateral, 1u);
  EXPECT_EQ(stats.multilateral, 1u);
  EXPECT_EQ(stats.unknown, 0u);
  EXPECT_EQ(stats.classified(), 2u);
}

TEST(Multilateral, SessionKindNames) {
  EXPECT_EQ(session_kind_name(SessionKind::Bilateral), "bilateral");
  EXPECT_EQ(session_kind_name(SessionKind::Multilateral), "multilateral");
  EXPECT_EQ(session_kind_name(SessionKind::Unknown), "unknown");
}

// --- generator-level properties of the route-server extension ---

TEST(MultilateralGenerator, RouteServersAndMeshAppear) {
  GeneratorConfig config = GeneratorConfig::small_scale();
  config.route_server_prob = 1.0;
  const Topology topo = generate_topology(config);

  std::size_t with_rs = 0;
  std::size_t rs_sessions = 0;
  for (const auto& ixp : topo.ixps()) {
    with_rs += ixp.has_route_server;
    if (ixp.has_route_server) {
      EXPECT_TRUE(ixp.route_server_asn.valid());
      EXPECT_TRUE(ixp.peering_lan.contains(ixp.route_server_address));
    }
    for (const auto& port : ixp.ports) rs_sessions += port.route_server_session;
  }
  EXPECT_EQ(with_rs, topo.ixps().size());
  EXPECT_GT(rs_sessions, 0u);

  std::size_t multilateral = 0;
  for (const auto& link : topo.links()) {
    if (link.multilateral) {
      ++multilateral;
      EXPECT_EQ(link.type, LinkType::PublicPeering);
      // Both endpoints hold route-server sessions at that exchange.
      const Ixp& ixp = topo.ixp(link.ixp);
      for (const RouterId router : {link.a.router, link.b.router}) {
        const Asn owner = topo.router(router).owner;
        bool has_session = false;
        for (const auto& port : ixp.ports)
          if (port.member == owner && port.route_server_session)
            has_session = true;
        EXPECT_TRUE(has_session);
      }
    }
  }
  EXPECT_GT(multilateral, 0u);
}

TEST(MultilateralGenerator, DisabledRouteServersMeanNoMesh) {
  GeneratorConfig config = GeneratorConfig::tiny();
  config.route_server_prob = 0.0;
  const Topology topo = generate_topology(config);
  for (const auto& ixp : topo.ixps()) {
    EXPECT_FALSE(ixp.has_route_server);
    for (const auto& port : ixp.ports)
      EXPECT_FALSE(port.route_server_session);
  }
  for (const auto& link : topo.links()) EXPECT_FALSE(link.multilateral);
}

TEST(MultilateralGenerator, SmallMembersUseRouteServerMore) {
  GeneratorConfig config = GeneratorConfig::small_scale();
  config.route_server_prob = 1.0;
  const Topology topo = generate_topology(config);
  std::size_t small_total = 0;
  std::size_t small_rs = 0;
  std::size_t large_total = 0;
  std::size_t large_rs = 0;
  for (const auto& ixp : topo.ixps()) {
    for (const auto& port : ixp.ports) {
      const AsType type = topo.as_of(port.member).type;
      if (type == AsType::Eyeball || type == AsType::Enterprise) {
        ++small_total;
        small_rs += port.route_server_session;
      } else {
        ++large_total;
        large_rs += port.route_server_session;
      }
    }
  }
  ASSERT_GT(small_total, 0u);
  ASSERT_GT(large_total, 0u);
  EXPECT_GT(static_cast<double>(small_rs) / small_total,
            static_cast<double>(large_rs) / large_total);
}

}  // namespace
}  // namespace cfs
