// Parameterized property sweeps over seeds and data-noise levels: the
// paper's quality claims must hold across generated worlds, not on one
// lucky seed.
#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace cfs {
namespace {

CfsReport run_world(PipelineConfig config, Pipeline** out_pipeline) {
  static std::unique_ptr<Pipeline> pipeline;  // keep alive for validation
  pipeline = std::make_unique<Pipeline>(config);
  *out_pipeline = pipeline.get();
  auto traces =
      pipeline->initial_campaign(pipeline->default_targets(2, 2), 0.7);
  return pipeline->run_cfs(std::move(traces));
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AccuracyHoldsAcrossWorlds) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = GetParam();
  config.generator.seed = GetParam() * 31 + 7;
  Pipeline* pipeline = nullptr;
  const CfsReport report = run_world(config, &pipeline);

  ASSERT_GT(report.observed_interfaces(), 10u);
  EXPECT_GT(report.resolved_fraction(), 0.3);

  const auto acc = pipeline->validation().oracle_interface_accuracy(report);
  ASSERT_GT(acc.total, 10u);
  EXPECT_GT(acc.accuracy(), 0.7) << "seed " << GetParam();
  EXPECT_GT(acc.city_accuracy(), 0.85) << "seed " << GetParam();
}

TEST_P(SeedSweep, ResolvedInterfacesHaveExactlyOneCandidate) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = GetParam();
  config.generator.seed = GetParam() * 31 + 7;
  Pipeline* pipeline = nullptr;
  const CfsReport report = run_world(config, &pipeline);

  for (const auto& [addr, inf] : report.interfaces) {
    if (inf.resolved()) {
      EXPECT_EQ(inf.candidates.size(), 1u);
      EXPECT_GE(inf.resolved_iteration, 0);
    }
    if (inf.has_constraint) EXPECT_FALSE(inf.candidates.empty());
    EXPECT_TRUE(std::is_sorted(inf.candidates.begin(), inf.candidates.end()));
  }
}

TEST_P(SeedSweep, LinksReferenceObservedInterfaces) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = GetParam();
  config.generator.seed = GetParam() * 31 + 7;
  Pipeline* pipeline = nullptr;
  const CfsReport report = run_world(config, &pipeline);

  for (const LinkInference& link : report.links) {
    EXPECT_NE(report.find(link.obs.near_addr), nullptr);
    EXPECT_NE(report.find(link.obs.far_addr), nullptr);
    EXPECT_NE(link.obs.near_as, link.obs.far_as);
    if (link.obs.kind == PeeringKind::Public) {
      EXPECT_TRUE(link.obs.ixp.valid());
      // Far address of a public observation is an IXP LAN address.
      EXPECT_TRUE(pipeline->topology()
                      .ixp_of_address(link.obs.far_addr)
                      .has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(3, 17, 101, 9999));

// Noise sweep: CFS accuracy must degrade gracefully, not collapse, as the
// facility database loses records (the Figure 8 property, test-sized).
class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, AccuracySurvivesDatabaseNoise) {
  PipelineConfig config = PipelineConfig::tiny();
  config.peeringdb.fac_link_missing = GetParam();
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.7);
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  const auto acc = pipeline.validation().oracle_interface_accuracy(report);
  if (acc.total < 10u) GTEST_SKIP() << "too few resolutions to score";
  // Completeness falls with noise, but what resolves must not collapse
  // (paper-scale behaviour is measured by bench_fig8_robustness).
  EXPECT_GT(acc.city_accuracy(), 0.6) << "missing=" << GetParam();
  if (GetParam() <= 0.2)
    EXPECT_GT(acc.city_accuracy(), 0.8) << "missing=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(MissingLinkRates, NoiseSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6));

}  // namespace
}  // namespace cfs
