// CFS soundness properties: the algorithm must never manufacture
// information that its public inputs cannot justify.
#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace cfs {
namespace {

struct SharedRun {
  std::unique_ptr<Pipeline> pipeline;
  CfsReport report;
};

const SharedRun& shared_run() {
  static const SharedRun run = [] {
    SharedRun out;
    PipelineConfig config = PipelineConfig::tiny();
    config.cfs.max_iterations = 10;
    out.pipeline = std::make_unique<Pipeline>(config);
    auto traces = out.pipeline->initial_campaign(
        out.pipeline->default_targets(2, 2), 0.7);
    out.report = out.pipeline->run_cfs(std::move(traces));
    return out;
  }();
  return run;
}

TEST(CfsSoundness, CandidatesComeFromTheFacilityDatabase) {
  const SharedRun& run = shared_run();
  const auto& db = const_cast<Pipeline&>(*run.pipeline).facility_db();
  for (const auto& [addr, inf] : run.report.interfaces) {
    if (!inf.has_constraint) continue;
    // Alias propagation may legitimately place an interface using facility
    // knowledge of its router-mates' ASes, so those are exempt.
    if (run.report.aliases.set_of(addr) >= 0) continue;
    // Otherwise every candidate facility must be one the interface's AS is
    // listed at (the database is the only source of facility knowledge).
    const auto& allowed = db.facilities_of(inf.asn);
    for (const FacilityId cand : inf.candidates)
      EXPECT_TRUE(std::binary_search(allowed.begin(), allowed.end(), cand))
          << addr.to_string() << " candidate outside its AS's DB record";
  }
}

TEST(CfsSoundness, LinkFacilitiesMatchInterfaceState) {
  const SharedRun& run = shared_run();
  for (const LinkInference& link : run.report.links) {
    const auto* near = run.report.find(link.obs.near_addr);
    if (link.near_facility) {
      ASSERT_NE(near, nullptr);
      ASSERT_TRUE(near->resolved());
      EXPECT_EQ(*link.near_facility, near->facility());
    }
    if (link.far_facility && !link.far_by_proximity) {
      const auto* far = run.report.find(link.obs.far_addr);
      ASSERT_NE(far, nullptr);
      ASSERT_TRUE(far->resolved());
      EXPECT_EQ(*link.far_facility, far->facility());
    }
    // Proximity-inferred far ends must at least be among the far side's
    // candidate set.
    if (link.far_facility && link.far_by_proximity) {
      const auto* far = run.report.find(link.obs.far_addr);
      ASSERT_NE(far, nullptr);
      EXPECT_TRUE(std::binary_search(far->candidates.begin(),
                                     far->candidates.end(),
                                     *link.far_facility));
    }
  }
}

TEST(CfsSoundness, ObservationEndpointsDiffer) {
  const SharedRun& run = shared_run();
  for (const LinkInference& link : run.report.links) {
    EXPECT_NE(link.obs.near_as, link.obs.far_as);
    EXPECT_NE(link.obs.near_addr, link.obs.far_addr);
    if (link.obs.kind == PeeringKind::Public)
      EXPECT_TRUE(link.obs.ixp.valid());
  }
}

TEST(CfsSoundness, ResolvedIterationWithinRunLength) {
  const SharedRun& run = shared_run();
  for (const auto& [addr, inf] : run.report.interfaces) {
    if (!inf.resolved()) continue;
    EXPECT_GE(inf.resolved_iteration, 1);
    EXPECT_LE(inf.resolved_iteration,
              static_cast<int>(run.report.iterations_run));
  }
}

TEST(CfsSoundness, AliasSetsOnlyContainObservedOrProbedAddresses) {
  const SharedRun& run = shared_run();
  // Every aliased address was part of the observed peering-address corpus;
  // its inference entry may or may not exist (far-side LAN addresses do),
  // but alias sets must never contain unrelated addresses.
  for (const auto& set : run.report.aliases.sets)
    for (const Ipv4 addr : set)
      EXPECT_NE(run.pipeline->topology().find_interface(addr), nullptr);
}

}  // namespace
}  // namespace cfs
