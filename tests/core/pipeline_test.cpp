#include "core/pipeline.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

TEST(PipelinePresets, ScalesOrderCorrectly) {
  const PipelineConfig tiny = PipelineConfig::tiny();
  const PipelineConfig small = PipelineConfig::small_scale();
  const PipelineConfig paper = PipelineConfig::paper_scale();
  EXPECT_LT(tiny.generator.metros, small.generator.metros);
  EXPECT_LT(small.generator.metros, paper.generator.metros);
  EXPECT_LT(tiny.platforms.atlas_target, paper.platforms.atlas_target);
  EXPECT_LE(tiny.cfs.max_iterations, paper.cfs.max_iterations);
}

TEST(PipelineWiring, AllStagesAccessible) {
  Pipeline pipeline(PipelineConfig::tiny());
  EXPECT_GT(pipeline.topology().ases().size(), 0u);
  EXPECT_GT(pipeline.vantage_points().all().size(), 0u);
  EXPECT_GT(pipeline.looking_glasses().entries().size(), 0u);
  EXPECT_GT(pipeline.communities().dictionary_size(), 0u);
  EXPECT_GT(pipeline.ixp_websites().member_table_count() +
                pipeline.noc_websites().publishers(),
            0u);
  // Data sources answer for a real address.
  const auto& as = pipeline.topology().ases().front();
  EXPECT_EQ(pipeline.ip2asn().lookup(as.prefixes.front().at(9)), as.asn);
}

TEST(PipelineTargets, DefaultTargetsRespectTypeAndCount) {
  Pipeline pipeline(PipelineConfig::tiny());
  const auto targets = pipeline.default_targets(2, 3);
  ASSERT_EQ(targets.size(), 5u);
  int content = 0;
  int transit = 0;
  for (const Asn asn : targets) {
    const auto type = pipeline.topology().as_of(asn).type;
    content += type == AsType::Content;
    transit += type == AsType::Tier1 || type == AsType::Transit;
  }
  EXPECT_EQ(content, 2);
  EXPECT_EQ(transit, 3);
}

TEST(PipelineTargets, TargetsOrderedByFootprint) {
  Pipeline pipeline(PipelineConfig::small_scale());
  const auto targets = pipeline.default_targets(3, 0);
  ASSERT_EQ(targets.size(), 3u);
  const auto& topo = pipeline.topology();
  EXPECT_GE(topo.as_of(targets[0]).facilities.size(),
            topo.as_of(targets[1]).facilities.size());
  EXPECT_GE(topo.as_of(targets[1]).facilities.size(),
            topo.as_of(targets[2]).facilities.size());
}

TEST(PipelineCampaign, VpFractionScalesTraceCount) {
  Pipeline p1(PipelineConfig::tiny());
  const auto small_run = p1.initial_campaign(p1.default_targets(1, 1), 0.2);
  Pipeline p2(PipelineConfig::tiny());
  const auto big_run = p2.initial_campaign(p2.default_targets(1, 1), 1.0);
  EXPECT_GT(big_run.size(), small_run.size());
}

}  // namespace
}  // namespace cfs
