// Incremental-engine contract: the dirty-set/cache path must be
// observationally identical to the full re-scan path, the follow-up
// budget must only be charged for slots that probe, and remote_suspect
// must be a sticky OR over the evidence rather than last-writer-wins.
#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>

#include "core/candidates.h"
#include "core/pipeline.h"
#include "core/remote.h"

namespace cfs {
namespace {

CfsReport run_pipeline(PipelineConfig config, bool incremental) {
  config.cfs.incremental = incremental;
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  return pipeline.run_cfs(std::move(traces));
}

// Everything except metrics (timings differ by construction) and
// InterfaceInference::conflicts (the full engine re-counts the same
// conflicting observation every sweep; the incremental one does not
// re-visit clean observations, so the tally is engine-specific).
void expect_identical(const CfsReport& full, const CfsReport& inc) {
  EXPECT_EQ(full.traces_used, inc.traces_used);
  EXPECT_EQ(full.iterations_run, inc.iterations_run);
  EXPECT_EQ(full.resolved_per_iteration, inc.resolved_per_iteration);
  EXPECT_EQ(full.aliases.sets, inc.aliases.sets);
  EXPECT_EQ(full.aliases.unresolved, inc.aliases.unresolved);

  ASSERT_EQ(full.links.size(), inc.links.size());
  for (std::size_t i = 0; i < full.links.size(); ++i) {
    const LinkInference& a = full.links[i];
    const LinkInference& b = inc.links[i];
    EXPECT_TRUE(a.obs == b.obs) << "link " << i;
    EXPECT_EQ(a.type, b.type) << "link " << i;
    EXPECT_EQ(a.near_facility, b.near_facility) << "link " << i;
    EXPECT_EQ(a.far_facility, b.far_facility) << "link " << i;
    EXPECT_EQ(a.far_by_proximity, b.far_by_proximity) << "link " << i;
  }

  ASSERT_EQ(full.interfaces.size(), inc.interfaces.size());
  for (const auto& [addr, inf] : full.interfaces) {
    const InterfaceInference* other = inc.find(addr);
    ASSERT_NE(other, nullptr) << addr.to_string();
    EXPECT_EQ(inf.asn, other->asn) << addr.to_string();
    EXPECT_EQ(inf.has_constraint, other->has_constraint) << addr.to_string();
    EXPECT_EQ(inf.candidates, other->candidates) << addr.to_string();
    EXPECT_EQ(inf.remote_suspect, other->remote_suspect) << addr.to_string();
    EXPECT_EQ(inf.resolved_iteration, other->resolved_iteration)
        << addr.to_string();
    EXPECT_EQ(inf.seen_from, other->seen_from) << addr.to_string();
    EXPECT_EQ(inf.queried_ixps, other->queried_ixps) << addr.to_string();
  }
}

TEST(IncrementalCfs, MatchesFullEngineOnTinyPipeline) {
  const CfsReport full = run_pipeline(PipelineConfig::tiny(), false);
  const CfsReport inc = run_pipeline(PipelineConfig::tiny(), true);
  expect_identical(full, inc);

  EXPECT_FALSE(full.metrics.incremental);
  EXPECT_TRUE(inc.metrics.incremental);
  EXPECT_EQ(full.metrics.alias_refreshes, inc.metrics.alias_refreshes);

  // The dirty set never re-processes more than the full sweep does, and
  // refreshes never re-classify more than the whole corpus.
  std::size_t full_constrained = 0;
  std::size_t inc_constrained = 0;
  for (const auto& row : full.metrics.iterations)
    full_constrained += row.constrained_observations;
  for (const auto& row : inc.metrics.iterations)
    inc_constrained += row.constrained_observations;
  EXPECT_LE(inc_constrained, full_constrained);
  EXPECT_LE(inc.metrics.reclassified_observations,
            full.metrics.reclassified_observations);
}

TEST(IncrementalCfs, MetricsRowPerIteration) {
  const CfsReport report = run_pipeline(PipelineConfig::tiny(), true);
  const CfsMetrics& m = report.metrics;
  ASSERT_EQ(m.iterations.size(), report.iterations_run);
  ASSERT_EQ(report.resolved_per_iteration.size(), report.iterations_run);
  for (std::size_t i = 0; i < m.iterations.size(); ++i) {
    EXPECT_EQ(m.iterations[i].iteration, i + 1);
    EXPECT_EQ(m.iterations[i].resolved, report.resolved_per_iteration[i]);
  }
  EXPECT_GT(m.initial_traces, 0u);
  EXPECT_GT(m.initial_observations, 0u);
  EXPECT_GT(m.alias_refreshes, 0u);
}

// Regression for the follow-up budget leak: a slot whose target scoring
// comes up empty must not consume one of the followup_interfaces slots.
// With the fix, every iteration either exhausts the budget with *probing*
// slots or walks the whole pool (each slot probing or skipping).
TEST(IncrementalCfs, FollowupBudgetOnlyChargedForLaunchedSlots) {
  for (const bool incremental : {false, true}) {
    const CfsReport report =
        run_pipeline(PipelineConfig::tiny(), incremental);
    for (const auto& row : report.metrics.iterations) {
      EXPECT_LE(row.followups_launched, row.followup_budget);
      EXPECT_TRUE(row.followups_launched == row.followup_budget ||
                  row.followups_launched + row.followups_skipped ==
                      row.followup_pool)
          << "iteration " << row.iteration << ": launched "
          << row.followups_launched << ", skipped " << row.followups_skipped
          << ", pool " << row.followup_pool;
    }
  }
}

// Regression for remote_suspect flapping: the flag must be the OR of the
// per-observation verdicts, not whatever the last-scanned observation
// said. Recompute the verdicts from the final observation set and the
// public databases (mirroring Step 2's three remote triggers): every
// trigger present in the final set must have stuck. The converse does
// not hold — the flag is sticky over observation *history*, and an
// observation from a pre-refresh ASN-map generation can legitimately
// have set it before re-classification replaced the observation.
TEST(IncrementalCfs, RemoteSuspectIsStickyOrOverObservations) {
  const PipelineConfig config = PipelineConfig::tiny();
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  const RemotePeeringDetector detector(config.cfs.remote);
  const FacilityDatabase& db = pipeline.facility_db();
  const Topology& topo = pipeline.topology();

  std::unordered_map<Ipv4, bool> expected;
  for (const LinkInference& link : report.links) {
    const PeeringObservation& obs = link.obs;
    const auto& fa = db.facilities_of(obs.near_as);
    const auto& fb = db.facilities_of(obs.far_as);
    if (obs.kind == PeeringKind::Public) {
      const auto& fe = db.ixp_facilities(obs.ixp);
      if (!fa.empty() && facility_intersection(fa, fe).empty()) {
        bool metro_overlap = false;
        for (const FacilityId af : fa)
          for (const FacilityId ef : fe)
            if (topo.metro_of(af) == topo.metro_of(ef)) metro_overlap = true;
        if (!metro_overlap) expected[obs.near_addr] = true;
      }
      if (!fb.empty() && detector.far_side_remote(obs))
        expected[obs.far_addr] = true;
    } else if (detector.far_side_remote(obs)) {
      expected[obs.far_addr] = true;
    }
  }

  for (const auto& [addr, inf] : report.interfaces)
    if (expected.contains(addr))
      EXPECT_TRUE(inf.remote_suspect) << addr.to_string();
}

// Debug builds must reject unsorted facility lists at the set-algebra
// boundary (std::set_intersection/includes silently misbehave on them).
TEST(IncrementalCfs, UnsortedFacilityInputsAssertInDebug) {
  const std::vector<FacilityId> unsorted{FacilityId(3), FacilityId(1)};
  const std::vector<FacilityId> sorted{FacilityId(0), FacilityId(2)};
  EXPECT_DEBUG_DEATH(facility_intersection(unsorted, sorted), "sorted");
  EXPECT_DEBUG_DEATH(std::ignore = facility_subset(sorted, unsorted),
                     "sorted");
  InterfaceInference inf;
  EXPECT_DEBUG_DEATH(std::ignore = inf.constrain(unsorted, 1), "sorted");
}

}  // namespace
}  // namespace cfs
