#include "core/classify.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct ClassifyFixture {
  MiniNet net;
  Asn a, c, e;
  LinkId c_a_link;   // private, numbered from C
  LinkId c_a_foreign;  // private, numbered from A (error source)
  LinkId c_e_public;

  std::unique_ptr<IpToAsnService> ip2asn;
  std::unique_ptr<InterfaceAsnMap> map;

  ClassifyFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 2});
    c = net.add_as(5000, AsType::Content, {1, 3});
    e = net.add_as(10000, AsType::Eyeball, {2, 3});
    // Numbered from A (the far side of the C->A crossing below), so the
    // far hop maps to A and the boundary is visible to plain LPM.
    c_a_link = net.xconnect(c, a, 1, BusinessRel::CustomerProvider, true);
    c_a_foreign =
        net.xconnect(e, a, 2, BusinessRel::CustomerProvider, true);
    net.join_ixp(c, 3);
    net.join_ixp(e, 3);
    c_e_public = net.public_peer(c, e, BusinessRel::PeerPeer);
    ip2asn = std::make_unique<IpToAsnService>(net.topo);
    map = std::make_unique<InterfaceAsnMap>(*ip2asn);
  }

  static Hop hop(Ipv4 addr, double rtt = 1.0) {
    return Hop{addr, rtt, true};
  }
};

TEST(Classify, PrivatePairDetected) {
  ClassifyFixture fx;
  const Link& link = fx.net.topo.link(fx.c_a_link);
  // Near hop: C's border router answering from a C-space interface; far
  // hop: A's side of the /30 (A-space).
  const Ipv4 c_side = fx.net.topo.router(link.a.router).local_address;
  TraceResult trace;
  trace.vp = VantagePointId(0);
  trace.hops = {ClassifyFixture::hop(c_side, 1.0),
                ClassifyFixture::hop(link.b.address, 1.2)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  const auto obs = classifier.classify(trace);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].kind, PeeringKind::Private);
  EXPECT_EQ(obs[0].near_as, fx.c);
  EXPECT_EQ(obs[0].far_as, fx.a);
  EXPECT_EQ(obs[0].near_addr, c_side);
  EXPECT_EQ(obs[0].far_addr, link.b.address);
}

TEST(Classify, PublicTripleDetected) {
  ClassifyFixture fx;
  const Link& pub = fx.net.topo.link(fx.c_e_public);
  // (IP_C, IP_e of E, IP inside E): use E's local address as the third hop.
  const Ipv4 c_side = fx.net.topo.router(pub.a.router).local_address;
  const Ipv4 e_lan = pub.b.address;
  const Ipv4 e_inside = fx.net.topo.router(pub.b.router).local_address;
  TraceResult trace;
  trace.vp = VantagePointId(0);
  trace.hops = {ClassifyFixture::hop(c_side, 1.0),
                ClassifyFixture::hop(e_lan, 1.4),
                ClassifyFixture::hop(e_inside, 1.6)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  const auto obs = classifier.classify(trace);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].kind, PeeringKind::Public);
  EXPECT_EQ(obs[0].near_as, fx.c);
  EXPECT_EQ(obs[0].far_as, fx.e);
  EXPECT_EQ(obs[0].ixp, fx.net.ix);
  EXPECT_EQ(obs[0].far_addr, e_lan);
  EXPECT_DOUBLE_EQ(obs[0].near_rtt_ms, 1.0);
  EXPECT_DOUBLE_EQ(obs[0].far_rtt_ms, 1.4);
}

TEST(Classify, UnresponsiveBoundaryDiscarded) {
  ClassifyFixture fx;
  const Link& link = fx.net.topo.link(fx.c_a_link);
  TraceResult trace;
  trace.hops = {
      ClassifyFixture::hop(fx.net.topo.router(link.a.router).local_address),
      Hop{link.b.address, 0.0, false}};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  EXPECT_TRUE(classifier.classify(trace).empty());
}

TEST(Classify, IntraAsHopsIgnored) {
  ClassifyFixture fx;
  // Two backbone interfaces of the same AS.
  const RouterId r1 = fx.net.router(fx.c, 1);
  const RouterId r3 = fx.net.router(fx.c, 3);
  TraceResult trace;
  trace.hops = {
      ClassifyFixture::hop(fx.net.topo.router(r1).local_address),
      ClassifyFixture::hop(fx.net.topo.router(r3).local_address)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  EXPECT_TRUE(classifier.classify(trace).empty());
}

TEST(Classify, ForeignNumberedPtpMissedWithoutAliasCorrection) {
  ClassifyFixture fx;
  // Link numbered from A's space: both hops map to A, so the raw
  // classifier sees no AS boundary.
  const Link& link = fx.net.topo.link(fx.c_a_foreign);
  TraceResult trace;
  trace.hops = {ClassifyFixture::hop(link.a.address),
                ClassifyFixture::hop(link.b.address)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  EXPECT_TRUE(classifier.classify(trace).empty());
}

TEST(Classify, AliasMajorityCorrectionRepairsMapping) {
  ClassifyFixture fx;
  const Link& link = fx.net.topo.link(fx.c_a_foreign);  // E(a side) - A
  // E's router at facility 2 owns link.a.address (in A's space) plus
  // E-space interfaces; a perfect alias set majority-votes it back to E.
  const RouterId e_router = link.a.router;
  AliasSets sets;
  sets.sets.push_back(fx.net.topo.router(e_router).interfaces);
  fx.map->apply_alias_correction(sets);
  EXPECT_GT(fx.map->corrections(), 0u);
  EXPECT_EQ(fx.map->asn_of(link.a.address), fx.e);

  TraceResult trace;
  trace.hops = {ClassifyFixture::hop(link.b.address),
                ClassifyFixture::hop(link.a.address)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  const auto obs = classifier.classify(trace);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].near_as, fx.a);
  EXPECT_EQ(obs[0].far_as, fx.e);
}

TEST(Classify, MajorityRequiredForCorrection) {
  ClassifyFixture fx;
  const Link& link = fx.net.topo.link(fx.c_a_foreign);
  // A two-interface set split between two ASes has no strict majority.
  AliasSets sets;
  sets.sets.push_back({link.a.address,
                       fx.net.topo.router(link.b.router).local_address});
  InterfaceAsnMap map(*fx.ip2asn);
  map.apply_alias_correction(sets);
  EXPECT_EQ(map.corrections(), 0u);
}

TEST(Classify, ClassifyAllMergesDuplicateCrossings) {
  ClassifyFixture fx;
  const Link& link = fx.net.topo.link(fx.c_a_link);
  const Ipv4 c_side = fx.net.topo.router(link.a.router).local_address;
  TraceResult t1;
  t1.hops = {ClassifyFixture::hop(c_side, 5.0),
             ClassifyFixture::hop(link.b.address, 6.0)};
  TraceResult t2;
  t2.hops = {ClassifyFixture::hop(c_side, 2.0),
             ClassifyFixture::hop(link.b.address, 2.5)};
  HopClassifier classifier(*fx.ip2asn, *fx.map);
  const auto obs = classifier.classify_all({t1, t2});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].near_rtt_ms, 2.0);
  EXPECT_DOUBLE_EQ(obs[0].far_rtt_ms, 2.5);
}

}  // namespace
}  // namespace cfs
