// Remote-peering detector and switch-proximity heuristic unit tests.
#include <gtest/gtest.h>

#include "core/proximity.h"
#include "core/remote.h"

namespace cfs {
namespace {

PeeringObservation obs_with_delta(double near_ms, double far_ms) {
  PeeringObservation obs;
  obs.near_rtt_ms = near_ms;
  obs.far_rtt_ms = far_ms;
  return obs;
}

TEST(RemoteDetector, LocalCrossingBelowThreshold) {
  RemotePeeringDetector detector;
  EXPECT_FALSE(detector.far_side_remote(obs_with_delta(10.0, 10.6)));
  EXPECT_DOUBLE_EQ(detector.delta_ms(obs_with_delta(10.0, 10.6)), 0.6);
}

TEST(RemoteDetector, LongHaulAboveThreshold) {
  RemotePeeringDetector detector;
  EXPECT_TRUE(detector.far_side_remote(obs_with_delta(10.0, 25.0)));
}

TEST(RemoteDetector, NegativeDeltaClampedToZero) {
  RemotePeeringDetector detector;
  // Jitter can make the far hop look faster; never negative.
  EXPECT_DOUBLE_EQ(detector.delta_ms(obs_with_delta(12.0, 11.0)), 0.0);
  EXPECT_FALSE(detector.far_side_remote(obs_with_delta(12.0, 11.0)));
}

TEST(RemoteDetector, ConfigurableThreshold) {
  RemotePeeringDetector strict(RemoteDetectorConfig{.rtt_delta_threshold_ms = 0.5});
  EXPECT_TRUE(strict.far_side_remote(obs_with_delta(10.0, 10.6)));
}

TEST(Proximity, SingleCandidateTrivial) {
  ProximityHeuristic prox;
  const std::vector<FacilityId> one = {FacilityId(4)};
  EXPECT_EQ(prox.infer_far(IxpId(0), FacilityId(1), one), FacilityId(4));
}

TEST(Proximity, AbstainsWithoutObservations) {
  ProximityHeuristic prox;
  const std::vector<FacilityId> two = {FacilityId(4), FacilityId(5)};
  EXPECT_FALSE(prox.infer_far(IxpId(0), FacilityId(1), two).has_value());
}

TEST(Proximity, LearnsRankingFromResolvedPairs) {
  ProximityHeuristic prox;
  for (int i = 0; i < 5; ++i)
    prox.observe(IxpId(0), FacilityId(1), FacilityId(4));
  prox.observe(IxpId(0), FacilityId(1), FacilityId(5));
  const std::vector<FacilityId> two = {FacilityId(4), FacilityId(5)};
  EXPECT_EQ(prox.infer_far(IxpId(0), FacilityId(1), two), FacilityId(4));
  EXPECT_EQ(prox.observations(), 6u);
}

TEST(Proximity, AbstainsOnTies) {
  ProximityHeuristic prox;
  prox.observe(IxpId(0), FacilityId(1), FacilityId(4));
  prox.observe(IxpId(0), FacilityId(1), FacilityId(5));
  const std::vector<FacilityId> two = {FacilityId(4), FacilityId(5)};
  EXPECT_FALSE(prox.infer_far(IxpId(0), FacilityId(1), two).has_value());
}

TEST(Proximity, RankingIsPerIxpAndPerNearFacility) {
  ProximityHeuristic prox;
  prox.observe(IxpId(0), FacilityId(1), FacilityId(4));
  const std::vector<FacilityId> two = {FacilityId(4), FacilityId(5)};
  // Different IXP: no data.
  EXPECT_FALSE(prox.infer_far(IxpId(1), FacilityId(1), two).has_value());
  // Different near facility: no data.
  EXPECT_FALSE(prox.infer_far(IxpId(0), FacilityId(2), two).has_value());
}

TEST(Proximity, CandidateOutsideObservationsIgnored) {
  ProximityHeuristic prox;
  prox.observe(IxpId(0), FacilityId(1), FacilityId(9));
  const std::vector<FacilityId> cands = {FacilityId(4), FacilityId(5)};
  // Observed facility is not among the candidates: abstain.
  EXPECT_FALSE(prox.infer_far(IxpId(0), FacilityId(1), cands).has_value());
}

}  // namespace
}  // namespace cfs
