// Deterministic end-to-end CFS scenarios on the hand-built MiniNet,
// mirroring the paper's Figure 5 walk-through.
#include "core/cfs.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct Scenario {
  MiniNet net;
  Asn a, c, e, r, v;
  LinkId ca_link, ae_public, ar_public;

  std::unique_ptr<LookingGlassDirectory> lgs;
  std::unique_ptr<VantagePointSet> vps;
  std::unique_ptr<RoutingOracle> routing;
  std::unique_ptr<ForwardingEngine> forwarding;
  std::unique_ptr<TracerouteEngine> engine;
  std::unique_ptr<MeasurementCampaign> campaign;
  std::unique_ptr<IpToAsnService> ip2asn;
  std::unique_ptr<NocWebsiteSource> noc;
  std::unique_ptr<IxpWebsiteSource> ixp_sites;
  std::unique_ptr<FacilityDatabase> db;

  Scenario() {
    // Transit A spans four facilities; its fac[2] router holds both the
    // IXP port and the private cross-connect with content C -- the same
    // multi-role situation the paper's toy example narrows to one site.
    a = net.add_as(1000, AsType::Transit, {0, 1, 2, 5});
    c = net.add_as(5000, AsType::Content, {2, 5});
    e = net.add_as(10000, AsType::Eyeball, {3});
    r = net.add_as(10001, AsType::Eyeball, {5});  // remote IXP member
    v = net.add_as(30000, AsType::Enterprise, {0});

    net.xconnect(v, a, 0, BusinessRel::CustomerProvider);
    ca_link = net.xconnect(c, a, 2, BusinessRel::CustomerProvider);
    net.join_ixp(a, 2);
    net.join_ixp(e, 3);
    net.join_ixp_remote(r, 5, a);
    ae_public = net.public_peer(a, e, BusinessRel::PeerPeer);
    ar_public = net.public_peer(a, r, BusinessRel::CustomerProvider);
    net.topo.validate();

    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo, LookingGlassDirectory::Config{.host_probability = 0.0,
                                                .bgp_support_probability = 0,
                                                .cooldown_s = 60,
                                                .seed = 1});
    PlatformConfig pcfg;
    pcfg.atlas_target = 6;  // all hosted in V or the eyeballs
    pcfg.iplane_target = 2;
    pcfg.ark_target = 0;
    vps = std::make_unique<VantagePointSet>(net.topo, *lgs, pcfg);

    routing = std::make_unique<RoutingOracle>(net.topo);
    forwarding = std::make_unique<ForwardingEngine>(net.topo, *routing);
    EngineConfig ecfg;
    ecfg.jitter_ms = 0.05;
    ecfg.probe_loss = 0.0;
    engine = std::make_unique<TracerouteEngine>(net.topo, *forwarding, ecfg, 5);
    campaign = std::make_unique<MeasurementCampaign>(net.topo, *engine, *lgs);
    ip2asn = std::make_unique<IpToAsnService>(net.topo);

    // Perfect facility data: isolates the constraint logic itself.
    PeeringDbConfig pdb;
    pdb.as_record_missing = 0.0;
    pdb.fac_link_missing = 0.0;
    pdb.ixp_record_missing = 0.0;
    pdb.ixp_fac_link_missing = 0.0;
    pdb.stale_link = 0.0;
    WebsiteConfig web;
    noc = std::make_unique<NocWebsiteSource>(net.topo, web);
    ixp_sites = std::make_unique<IxpWebsiteSource>(net.topo, web);
    db = std::make_unique<FacilityDatabase>(net.topo, PeeringDb(net.topo, pdb),
                                            *noc, *ixp_sites);
  }

  CfsReport run(const std::vector<Asn>& targets, CfsConfig cfg = {}) {
    std::vector<const VantagePoint*> probes;
    for (const VantagePoint& vp : vps->all()) probes.push_back(&vp);
    std::vector<Ipv4> addrs;
    for (const Asn asn : targets) {
      const auto t = MeasurementCampaign::targets_for(net.topo, asn);
      addrs.insert(addrs.end(), t.begin(), t.end());
    }
    auto traces = campaign->run(probes, addrs);
    cfg.max_iterations = 12;
    ConstrainedFacilitySearch cfs(net.topo, *db, *ip2asn, *campaign, *vps,
                                  cfg);
    return cfs.run(std::move(traces));
  }
};

TEST(CfsScenario, ResolvesMultiRoleRouterToSingleFacility) {
  Scenario sc;
  const CfsReport report = sc.run({sc.c, sc.e});

  // The near-side interface of the A->C crossing and of the A->E public
  // peering both live on A's fac[2] router; CFS must pin them there.
  bool saw_private = false;
  bool saw_public = false;
  for (const LinkInference& link : report.links) {
    if (link.obs.kind == PeeringKind::Private && link.obs.near_as == sc.a &&
        link.obs.far_as == sc.c) {
      saw_private = true;
      ASSERT_TRUE(link.near_facility.has_value());
      EXPECT_EQ(*link.near_facility, sc.net.fac[2]);
      EXPECT_EQ(link.type, InterconnectionType::PrivateCrossConnect);
    }
    if (link.obs.kind == PeeringKind::Public && link.obs.near_as == sc.a &&
        link.obs.far_as == sc.e) {
      saw_public = true;
      ASSERT_TRUE(link.near_facility.has_value());
      EXPECT_EQ(*link.near_facility, sc.net.fac[2]);
      EXPECT_EQ(link.type, InterconnectionType::PublicLocal);
    }
  }
  EXPECT_TRUE(saw_private);
  EXPECT_TRUE(saw_public);
}

TEST(CfsScenario, FarSideOfPublicPeeringConstrainedToIxpFacility) {
  Scenario sc;
  const CfsReport report = sc.run({sc.e});
  // E has a single facility hosting the access switch: its LAN interface
  // resolves immediately (Step 2 case 1 from the far side).
  const Link& pub = sc.net.topo.link(sc.ae_public);
  const auto* far = report.find(pub.b.address);
  ASSERT_NE(far, nullptr);
  ASSERT_TRUE(far->resolved());
  EXPECT_EQ(far->facility(), sc.net.fac[3]);
}

TEST(CfsScenario, RemoteIxpMemberClassifiedRemote) {
  Scenario sc;
  const CfsReport report = sc.run({sc.r});
  bool saw = false;
  for (const LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public) continue;
    if (link.obs.far_as != sc.r) continue;
    saw = true;
    EXPECT_EQ(link.type, InterconnectionType::PublicRemote);
  }
  EXPECT_TRUE(saw);
}

TEST(CfsScenario, ConvergenceHistoryIsMonotonic) {
  Scenario sc;
  const CfsReport report = sc.run({sc.c, sc.e, sc.r});
  ASSERT_FALSE(report.resolved_per_iteration.empty());
  for (std::size_t i = 1; i < report.resolved_per_iteration.size(); ++i)
    EXPECT_GE(report.resolved_per_iteration[i],
              report.resolved_per_iteration[i - 1]);
  EXPECT_EQ(report.resolved_per_iteration.back(),
            report.resolved_interfaces());
}

TEST(CfsScenario, MultiRoleRouterStatistics) {
  Scenario sc;
  const CfsReport report = sc.run({sc.c, sc.e, sc.r});
  const auto stats = report.router_stats();
  EXPECT_GT(stats.routers, 0u);
  // A's fac[2] router implements the cross-connect and the IXP sessions.
  EXPECT_GE(stats.multi_role, 1u);
}

TEST(CfsScenario, EmptyTraceSetYieldsEmptyReport) {
  Scenario sc;
  ConstrainedFacilitySearch cfs(sc.net.topo, *sc.db, *sc.ip2asn, *sc.campaign,
                                *sc.vps, CfsConfig{.max_iterations = 3});
  const CfsReport report = cfs.run({});
  EXPECT_EQ(report.observed_interfaces(), 0u);
  EXPECT_EQ(report.resolved_interfaces(), 0u);
  EXPECT_TRUE(report.links.empty());
}

}  // namespace
}  // namespace cfs
