#include "core/validation.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

// MiniNet world with all four engineering options and the full validation
// apparatus wired by hand.
struct ValidationFixture {
  MiniNet net;
  Asn a, c, e, r;
  LinkId ca_xconnect, ae_public, ar_public, ce_tether, remote_private;

  std::unique_ptr<CommunityRegistry> communities;
  std::unique_ptr<LookingGlassDirectory> lgs;
  std::unique_ptr<DnsNames> dns;
  std::unique_ptr<DropParser> drop;
  std::unique_ptr<IxpWebsiteSource> ixp_sites;
  std::unique_ptr<ValidationHarness> harness;

  ValidationFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 2, 4});
    c = net.add_as(5000, AsType::Content, {2, 3});
    e = net.add_as(10000, AsType::Eyeball, {3});
    r = net.add_as(10001, AsType::Eyeball, {5});

    ca_xconnect = net.xconnect(c, a, 2, BusinessRel::CustomerProvider);
    net.join_ixp(a, 1);
    net.join_ixp(e, 3);
    net.join_ixp(c, 3);
    net.join_ixp_remote(r, 5, a);
    ae_public = net.public_peer(a, e, BusinessRel::PeerPeer);
    ar_public = net.public_peer(a, r, BusinessRel::CustomerProvider);
    ce_tether = net.tether(c, e, BusinessRel::PeerPeer);
    // Long-haul private circuit: A's London router to C's Frankfurt one.
    remote_private = make_remote_private();
    net.topo.validate();

    communities = std::make_unique<CommunityRegistry>(net.topo, 1.0, 1);
    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo, LookingGlassDirectory::Config{.host_probability = 1.0,
                                                .bgp_support_probability = 1.0,
                                                .cooldown_s = 60,
                                                .seed = 1});
    DnsConfig dcfg;
    dcfg.record_missing = 0.0;
    dcfg.stale_wrong = 0.0;
    dcfg.documented_operator_fraction = 1.0;
    dns = std::make_unique<DnsNames>(net.topo, dcfg);
    drop = std::make_unique<DropParser>(*dns);
    WebsiteConfig wcfg;
    wcfg.ixp_facility_list = 1.0;
    wcfg.ixp_member_table = 1.0;
    ixp_sites = std::make_unique<IxpWebsiteSource>(net.topo, wcfg);

    ValidationHarness::Config vcfg;
    vcfg.cooperating_operators = {c};
    harness = std::make_unique<ValidationHarness>(
        net.topo, *communities, *lgs, *dns, *drop, *ixp_sites, vcfg);
  }

  LinkId make_remote_private() {
    const RouterId ra = net.router(a, 4);   // London
    const RouterId rc = net.router(c, 2);   // Frankfurt
    const Prefix ptp = net.take_ptp(a);
    Link link;
    link.type = LinkType::PrivateCrossConnect;
    link.rel = BusinessRel::CustomerProvider;
    link.a = LinkEnd{rc, ptp.at(1)};
    link.b = LinkEnd{ra, ptp.at(2)};
    link.facility = net.fac[4];
    link.latency_ms = 8.0;
    const LinkId id = net.topo.add_link(link);
    net.topo.add_interface(
        Interface{ptp.at(1), rc, id, InterfaceRole::PrivatePtp});
    net.topo.add_interface(
        Interface{ptp.at(2), ra, id, InterfaceRole::PrivatePtp});
    return id;
  }

  PeeringObservation obs_for_private(LinkId lid, double delta = 0.2) {
    const Link& link = net.topo.link(lid);
    PeeringObservation obs;
    obs.kind = PeeringKind::Private;
    obs.near_addr = link.a.address;
    obs.near_as = net.topo.router(link.a.router).owner;
    obs.far_addr = link.b.address;
    obs.far_as = net.topo.router(link.b.router).owner;
    obs.near_rtt_ms = 10.0;
    obs.far_rtt_ms = 10.0 + delta;
    return obs;
  }

  PeeringObservation obs_for_public(LinkId lid) {
    const Link& link = net.topo.link(lid);
    PeeringObservation obs;
    obs.kind = PeeringKind::Public;
    obs.near_addr = net.topo.router(link.a.router).local_address;
    obs.near_as = net.topo.router(link.a.router).owner;
    obs.far_addr = link.b.address;  // far side's IXP LAN address
    obs.far_as = net.topo.router(link.b.router).owner;
    obs.ixp = net.ix;
    return obs;
  }
};

TEST(Validation, TrueFacilityFollowsRouterLocation) {
  ValidationFixture fx;
  const Link& link = fx.net.topo.link(fx.ca_xconnect);
  EXPECT_EQ(fx.harness->true_facility(link.a.address), fx.net.fac[2]);
  EXPECT_EQ(fx.harness->true_facility(link.b.address), fx.net.fac[2]);
  EXPECT_FALSE(
      fx.harness->true_facility(*Ipv4::parse("9.9.9.9")).has_value());
}

TEST(Validation, TrueLinkTypeCrossConnect) {
  ValidationFixture fx;
  EXPECT_EQ(fx.harness->true_link_type(fx.obs_for_private(fx.ca_xconnect)),
            InterconnectionType::PrivateCrossConnect);
}

TEST(Validation, TrueLinkTypeTethering) {
  ValidationFixture fx;
  EXPECT_EQ(fx.harness->true_link_type(fx.obs_for_private(fx.ce_tether)),
            InterconnectionType::PrivateTethering);
}

TEST(Validation, TrueLinkTypeRemotePrivateOnlyAcrossMetros) {
  ValidationFixture fx;
  // Frankfurt <-> London circuit: remote.
  EXPECT_EQ(fx.harness->true_link_type(fx.obs_for_private(fx.remote_private)),
            InterconnectionType::PrivateRemote);
}

TEST(Validation, TrueLinkTypePublicLocalAndRemote) {
  ValidationFixture fx;
  EXPECT_EQ(fx.harness->true_link_type(fx.obs_for_public(fx.ae_public)),
            InterconnectionType::PublicLocal);
  EXPECT_EQ(fx.harness->true_link_type(fx.obs_for_public(fx.ar_public)),
            InterconnectionType::PublicRemote);
}

TEST(Validation, OracleScoresResolvedInterfaces) {
  ValidationFixture fx;
  const Link& link = fx.net.topo.link(fx.ca_xconnect);

  CfsReport report;
  InterfaceInference right;
  right.addr = link.a.address;
  right.asn = fx.c;
  right.constrain({fx.net.fac[2]}, 1);
  report.interfaces.emplace(right.addr, right);

  InterfaceInference same_metro_wrong;
  same_metro_wrong.addr = link.b.address;
  same_metro_wrong.asn = fx.a;
  same_metro_wrong.constrain({fx.net.fac[1]}, 1);  // wrong bldg, same metro
  report.interfaces.emplace(same_metro_wrong.addr, same_metro_wrong);

  const auto acc = fx.harness->oracle_interface_accuracy(report);
  EXPECT_EQ(acc.total, 2u);
  EXPECT_EQ(acc.correct, 1u);
  EXPECT_EQ(acc.city_correct, 1u);
  EXPECT_DOUBLE_EQ(acc.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(acc.city_accuracy(), 1.0);
}

TEST(Validation, BreakdownCoversCooperatingOperatorOnly) {
  ValidationFixture fx;
  const Link& link = fx.net.topo.link(fx.ca_xconnect);

  CfsReport report;
  // C's side (cooperating) and A's side (not cooperating, but A adopts
  // communities and hosts BGP-capable LGs, so it lands in that source).
  for (const auto& [addr, asn] :
       {std::pair{link.a.address, fx.c}, std::pair{link.b.address, fx.a}}) {
    InterfaceInference inf;
    inf.addr = addr;
    inf.asn = asn;
    inf.constrain({fx.net.fac[2]}, 1);
    report.interfaces.emplace(addr, inf);
  }
  LinkInference li;
  li.obs = fx.obs_for_private(fx.ca_xconnect);
  li.type = InterconnectionType::PrivateCrossConnect;
  li.near_facility = fx.net.fac[2];
  report.links.push_back(li);
  // Reverse direction: A as the near side.
  LinkInference reverse;
  reverse.obs = li.obs;
  std::swap(reverse.obs.near_addr, reverse.obs.far_addr);
  std::swap(reverse.obs.near_as, reverse.obs.far_as);
  reverse.type = InterconnectionType::PrivateCrossConnect;
  reverse.near_facility = fx.net.fac[2];
  report.links.push_back(reverse);

  const auto breakdown = fx.harness->validate(report);
  const auto direct = breakdown.find(
      {ValidationSource::DirectFeedback, ValidationLinkType::CrossConnect});
  ASSERT_NE(direct, breakdown.end());
  EXPECT_EQ(direct->second.total, 1u);  // only C's interface
  EXPECT_EQ(direct->second.correct, 1u);

  const auto comm = breakdown.find(
      {ValidationSource::BgpCommunities, ValidationLinkType::CrossConnect});
  ASSERT_NE(comm, breakdown.end());
  EXPECT_GE(comm->second.total, 1u);  // A adopts communities
}

TEST(Validation, IxpWebsiteSourceScoresFarEnds) {
  ValidationFixture fx;
  CfsReport report;
  LinkInference li;
  li.obs = fx.obs_for_public(fx.ae_public);
  li.type = InterconnectionType::PublicLocal;
  li.far_facility = fx.net.fac[3];  // correct: E's port facility
  report.links.push_back(li);

  const auto breakdown = fx.harness->validate(report);
  const auto site = breakdown.find(
      {ValidationSource::IxpWebsites, ValidationLinkType::PublicLocal});
  ASSERT_NE(site, breakdown.end());
  EXPECT_EQ(site->second.total, 1u);
  EXPECT_EQ(site->second.correct, 1u);
}

TEST(Validation, SourceNamesAreStable) {
  EXPECT_EQ(validation_source_name(ValidationSource::DirectFeedback),
            "direct feedback");
  EXPECT_EQ(validation_source_name(ValidationSource::IxpWebsites),
            "IXP websites");
  EXPECT_EQ(validation_link_type_name(ValidationLinkType::Tethering),
            "tethering");
  EXPECT_EQ(interconnection_type_name(InterconnectionType::PublicRemote),
            "public remote");
}

}  // namespace
}  // namespace cfs
