// Differential serial/parallel harness (docs/PARALLELISM.md).
//
// `--threads 1` is the reference implementation: no pool is constructed
// and every trace is computed inside the serial pass. Any other thread
// count speculates traces in parallel and must reproduce the reference
// byte for byte — same exported report JSON (minus the wall-clock metrics
// subtree), same CfsMetrics counters, same fault-plane accounting. The
// harness runs the full pipeline at 1/2/4/8 threads over three seeds,
// one of them under the PR-2 heavy-fault plan (50% LG outage, 20% VP
// churn), because the fault paths (retries, failovers, circuit breakers)
// are exactly where speculative execution could drift from serial.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "io/export.h"
#include "util/trace.h"

namespace cfs {
namespace {

struct RunResult {
  CfsReport report;
  std::string json_sans_metrics;  // pretty JSON with wall-clock subtree cut
  bool had_pool = false;
};

RunResult run_at(PipelineConfig config, int threads) {
  config.threads = threads;
  Pipeline pipeline(config);
  RunResult r;
  r.had_pool = pipeline.thread_pool() != nullptr;
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.5);
  r.report = pipeline.run_cfs(std::move(traces));
  JsonValue json = report_to_json(r.report);
  json.as_object().erase("metrics");  // timings legitimately differ
  r.json_sans_metrics = json.pretty();
  return r;
}

// Every counter (never a timing) must match between engines.
void expect_counters_identical(const CfsMetrics& a, const CfsMetrics& b) {
  EXPECT_EQ(a.incremental, b.incremental);
  EXPECT_EQ(a.initial_traces, b.initial_traces);
  EXPECT_EQ(a.initial_observations, b.initial_observations);
  EXPECT_EQ(a.alias_refreshes, b.alias_refreshes);
  EXPECT_EQ(a.reclassified_traces, b.reclassified_traces);
  EXPECT_EQ(a.reclassified_observations, b.reclassified_observations);
  EXPECT_EQ(a.replayed_observations, b.replayed_observations);
  EXPECT_EQ(a.faults, b.faults);  // equality ignores wall_ms by design
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationMetrics& x = a.iterations[i];
    const IterationMetrics& y = b.iterations[i];
    EXPECT_EQ(x.iteration, y.iteration) << "iteration " << i;
    EXPECT_EQ(x.alias_refreshed, y.alias_refreshed) << "iteration " << i;
    EXPECT_EQ(x.observations, y.observations) << "iteration " << i;
    EXPECT_EQ(x.interfaces, y.interfaces) << "iteration " << i;
    EXPECT_EQ(x.resolved, y.resolved) << "iteration " << i;
    EXPECT_EQ(x.classified_observations, y.classified_observations)
        << "iteration " << i;
    EXPECT_EQ(x.reclassified_traces, y.reclassified_traces)
        << "iteration " << i;
    EXPECT_EQ(x.replayed_observations, y.replayed_observations)
        << "iteration " << i;
    EXPECT_EQ(x.dirty_observations, y.dirty_observations) << "iteration " << i;
    EXPECT_EQ(x.constrained_observations, y.constrained_observations)
        << "iteration " << i;
    EXPECT_EQ(x.alias_sets_processed, y.alias_sets_processed)
        << "iteration " << i;
    EXPECT_EQ(x.followup_pool, y.followup_pool) << "iteration " << i;
    EXPECT_EQ(x.followup_budget, y.followup_budget) << "iteration " << i;
    EXPECT_EQ(x.followups_launched, y.followups_launched) << "iteration " << i;
    EXPECT_EQ(x.followups_skipped, y.followups_skipped) << "iteration " << i;
    EXPECT_EQ(x.followup_traces, y.followup_traces) << "iteration " << i;
  }
}

PipelineConfig base_config(std::uint64_t seed) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  config.seed = seed;
  config.generator.seed = seed * 977 + 3;
  return config;
}

PipelineConfig heavy_fault_config(std::uint64_t seed) {
  // The PR-2 acceptance plan: half the looking glasses suffer an outage,
  // a fifth of the VPs churn away, plus timeouts and bans for good
  // measure — maximal pressure on the retry/failover serial bookkeeping.
  PipelineConfig config = base_config(seed);
  config.faults.lg_outage_fraction = 0.5;
  config.faults.vp_churn_fraction = 0.2;
  config.faults.probe_timeout_rate = 0.1;
  config.faults.lg_ban_burst = 3;
  config.faults.seed = 5;
  return config;
}

void expect_equivalent_across_thread_counts(const PipelineConfig& config) {
  const RunResult reference = run_at(config, 1);
  // The reference must not even construct a pool.
  EXPECT_FALSE(reference.had_pool);
  EXPECT_EQ(reference.report.metrics.threads, 1u);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunResult parallel = run_at(config, threads);
    EXPECT_TRUE(parallel.had_pool);
    EXPECT_EQ(parallel.report.metrics.threads,
              static_cast<std::size_t>(threads));
    EXPECT_EQ(parallel.json_sans_metrics, reference.json_sans_metrics);
    expect_counters_identical(parallel.report.metrics,
                              reference.report.metrics);
  }
}

TEST(ParallelEquivalence, SeedAByteIdenticalAcrossThreadCounts) {
  expect_equivalent_across_thread_counts(base_config(4242));
}

TEST(ParallelEquivalence, SeedBByteIdenticalAcrossThreadCounts) {
  expect_equivalent_across_thread_counts(base_config(90125));
}

TEST(ParallelEquivalence, HeavyFaultPlanByteIdenticalAcrossThreadCounts) {
  expect_equivalent_across_thread_counts(heavy_fault_config(7));
}

TEST(ParallelEquivalence, ThreadsOneConstructsNoPool) {
  PipelineConfig config = base_config(1);
  config.threads = 1;
  Pipeline pipeline(config);
  EXPECT_EQ(pipeline.thread_pool(), nullptr);
  EXPECT_EQ(pipeline.campaign().pool(), nullptr);
  EXPECT_EQ(pipeline.threads(), 1);
}

TEST(ParallelEquivalence, ThreadsZeroResolvesToHardwareConcurrency) {
  PipelineConfig config = base_config(1);
  config.threads = 0;
  Pipeline pipeline(config);
  EXPECT_EQ(pipeline.threads(),
            static_cast<int>(ThreadPool::hardware_threads()));
  if (pipeline.threads() > 1) {
    ASSERT_NE(pipeline.thread_pool(), nullptr);
    EXPECT_EQ(pipeline.thread_pool()->workers(),
              ThreadPool::hardware_threads());
    EXPECT_EQ(pipeline.campaign().pool(), pipeline.thread_pool());
  }
}

TEST(ParallelEquivalence, TracingDoesNotPerturbReports) {
  // The observability contract (docs/OBSERVABILITY.md): enabling the span
  // timeline must not move a single byte of the report, at any thread
  // count — spans carry counts and ordinals only, wall clock lives solely
  // in the trace file and the excluded metrics subtree.
  const PipelineConfig config = heavy_fault_config(11);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Trace::disable();
    Trace::clear_events();
    const RunResult untraced = run_at(config, threads);
    Trace::enable();
    const RunResult traced = run_at(config, threads);
    Trace::disable();
    EXPECT_EQ(traced.json_sans_metrics, untraced.json_sans_metrics);
    expect_counters_identical(traced.report.metrics,
                              untraced.report.metrics);

    // The traced run actually produced a timeline covering the pipeline
    // end to end: campaign, classification, constraint fold, export.
    const auto events = Trace::events();
    const auto has = [&](const char* name) {
      return std::any_of(events.begin(), events.end(),
                         [&](const TraceEvent& e) { return e.name == name; });
    };
    EXPECT_TRUE(has("topology.generate"));
    EXPECT_TRUE(has("campaign.run"));
    EXPECT_TRUE(has("cfs.classify"));
    EXPECT_TRUE(has("cfs.constrain"));
    EXPECT_TRUE(has("cfs.run"));
    // json_sans_metrics serialises the report inside run_at, so the export
    // span is on the timeline too.
    EXPECT_TRUE(has("export.report"));
    if (threads > 1) {
      // Speculation fans out across workers in chunks; the initial
      // campaign is far above the parallel threshold at this corpus size.
      EXPECT_TRUE(has("campaign.speculate_chunk"));
      // Classification parallelises above its 32-trace threshold.
      if (traced.report.traces_used >= 32) {
        EXPECT_TRUE(has("cfs.classify_chunk"));
      }
    }
    Trace::clear_events();
  }
}

TEST(ParallelEquivalence, RepeatedParallelRunsReplayByteIdentical) {
  // Parallel mode must also be self-consistent run to run, not merely
  // equal to serial once: scheduling nondeterminism leaking into results
  // would show up here first.
  const PipelineConfig config = heavy_fault_config(21);
  const RunResult r1 = run_at(config, 4);
  const RunResult r2 = run_at(config, 4);
  EXPECT_EQ(r1.json_sans_metrics, r2.json_sans_metrics);
  expect_counters_identical(r1.report.metrics, r2.report.metrics);
}

}  // namespace
}  // namespace cfs
