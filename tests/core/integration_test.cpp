// Full-pipeline integration tests: generated ecosystem, real campaigns,
// CFS, and validation against the simulator's oracle — the end-to-end
// behaviour every benchmark harness builds on.
#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace cfs {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static Pipeline& pipeline() {
    static Pipeline instance(PipelineConfig::tiny());
    return instance;
  }
  static const CfsReport& report() {
    static const CfsReport instance = [] {
      Pipeline& p = pipeline();
      auto traces = p.initial_campaign(p.default_targets(2, 2), 0.8);
      return p.run_cfs(std::move(traces));
    }();
    return instance;
  }
};

TEST_F(PipelineTest, CampaignProducesObservations) {
  EXPECT_GT(report().observed_interfaces(), 20u);
  EXPECT_GT(report().links.size(), 10u);
  EXPECT_GT(report().traces_used, 50u);
}

TEST_F(PipelineTest, MajorityOfInterfacesResolve) {
  EXPECT_GT(report().resolved_fraction(), 0.4);
}

TEST_F(PipelineTest, OracleAccuracyHigh) {
  const auto acc = pipeline().validation().oracle_interface_accuracy(report());
  ASSERT_GT(acc.total, 10u);
  // The paper validates >= 88% facility-level, ~95% city-level; the tiny
  // test world is noisier than the paper-scale benches, so the gates sit a
  // little lower.
  EXPECT_GT(acc.accuracy(), 0.75);
  EXPECT_GT(acc.city_accuracy(), 0.85);
}

TEST_F(PipelineTest, WrongInferencesAreMostlySameCity) {
  const auto acc = pipeline().validation().oracle_interface_accuracy(report());
  const std::size_t wrong = acc.total - acc.correct;
  if (wrong > 0) {
    // A noticeable share of misses land in the right metro even in the
    // tiny test world; the paper-scale property (~95% city-level) is
    // checked by bench_fig9_validation.
    EXPECT_GE(acc.city_correct, wrong / 4);
    EXPECT_GT(acc.city_accuracy(), acc.accuracy());
  }
}

TEST_F(PipelineTest, LinkTypesLargelyCorrect) {
  const auto confusion = pipeline().validation().link_type_confusion(report());
  std::size_t diag = 0;
  std::size_t total = 0;
  std::size_t public_diag = 0;
  std::size_t public_total = 0;
  for (const auto& [pair, count] : confusion) {
    total += count;
    if (pair.first == pair.second) diag += count;
    const bool truth_public =
        pair.second == InterconnectionType::PublicLocal ||
        pair.second == InterconnectionType::PublicRemote;
    if (truth_public) {
      public_total += count;
      if (pair.first == pair.second) public_diag += count;
    }
  }
  ASSERT_GT(total, 10u);
  // Private-link typing suffers from "phantom crossings": /30s numbered
  // from the neighbor's space on routers that defeat alias resolution
  // shift the observed boundary one hop — the residual error mode the
  // paper's Section 4.1 correction cannot fully remove either.
  EXPECT_GT(static_cast<double>(diag) / total, 0.55);
  ASSERT_GT(public_total, 5u);
  EXPECT_GT(static_cast<double>(public_diag) / public_total, 0.72);
}

TEST_F(PipelineTest, ValidationBreakdownPopulated) {
  const auto breakdown = pipeline().validation().validate(report());
  std::size_t total = 0;
  for (const auto& [key, acc] : breakdown) total += acc.total;
  EXPECT_GT(total, 0u);
  for (const auto& [key, acc] : breakdown) {
    EXPECT_LE(acc.correct, acc.total);
    EXPECT_LE(acc.correct + acc.city_correct, acc.total);
  }
}

TEST_F(PipelineTest, CfsBeatsDnsBaselineOnCoverage) {
  // The DRoP baseline geolocates the subset of interfaces with
  // facility-encoding hostnames; CFS's facility-level coverage of observed
  // interfaces must exceed it (paper: 70.65% vs 32% at coarser grain).
  std::size_t dns_facility_level = 0;
  for (const auto& [addr, inf] : report().interfaces) {
    const auto hint = pipeline().drop().geolocate(addr);
    dns_facility_level += hint.level == DnsGeoHint::Level::Facility;
  }
  EXPECT_GT(report().resolved_interfaces(), dns_facility_level);
}

TEST_F(PipelineTest, RemoteSuspectsExist) {
  std::size_t remote_links = 0;
  for (const LinkInference& link : report().links)
    remote_links += link.type == InterconnectionType::PublicRemote ||
                    link.type == InterconnectionType::PrivateRemote;
  EXPECT_GT(remote_links, 0u);
}

TEST_F(PipelineTest, ReportIterationsWithinBudget) {
  EXPECT_LE(report().iterations_run,
            static_cast<std::size_t>(
                pipeline().config().cfs.max_iterations));
  EXPECT_EQ(report().resolved_per_iteration.size(),
            report().iterations_run);
}

TEST(PipelineDeterminism, SameSeedSameOutcome) {
  PipelineConfig cfg = PipelineConfig::tiny();
  cfg.cfs.max_iterations = 5;
  Pipeline p1(cfg);
  Pipeline p2(cfg);
  auto t1 = p1.initial_campaign(p1.default_targets(1, 1), 0.5);
  auto t2 = p2.initial_campaign(p2.default_targets(1, 1), 0.5);
  ASSERT_EQ(t1.size(), t2.size());
  const auto r1 = p1.run_cfs(std::move(t1));
  const auto r2 = p2.run_cfs(std::move(t2));
  EXPECT_EQ(r1.observed_interfaces(), r2.observed_interfaces());
  EXPECT_EQ(r1.resolved_interfaces(), r2.resolved_interfaces());
}

}  // namespace
}  // namespace cfs
