#include "core/report.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

Ipv4 ip(std::uint32_t v) { return Ipv4(v); }

LinkInference link(PeeringKind kind, Ipv4 near, Asn near_as, Ipv4 far,
                   Asn far_as, IxpId ixp = IxpId::invalid()) {
  LinkInference out;
  out.obs.kind = kind;
  out.obs.near_addr = near;
  out.obs.near_as = near_as;
  out.obs.far_addr = far;
  out.obs.far_as = far_as;
  out.obs.ixp = ixp;
  return out;
}

TEST(Report, EmptyReportCounters) {
  const CfsReport report;
  EXPECT_EQ(report.observed_interfaces(), 0u);
  EXPECT_EQ(report.resolved_interfaces(), 0u);
  EXPECT_EQ(report.resolved_fraction(), 0.0);
  EXPECT_EQ(report.no_data_interfaces(), 0u);
  EXPECT_EQ(report.find(ip(1)), nullptr);
  const auto stats = report.router_stats();
  EXPECT_EQ(stats.routers, 0u);
}

TEST(Report, ResolutionCounting) {
  CfsReport report;
  InterfaceInference resolved;
  resolved.addr = ip(1);
  resolved.constrain({FacilityId(3)}, 1);
  report.interfaces.emplace(resolved.addr, resolved);

  InterfaceInference open_set;
  open_set.addr = ip(2);
  open_set.constrain({FacilityId(3), FacilityId(4)}, 1);
  report.interfaces.emplace(open_set.addr, open_set);

  InterfaceInference no_data;
  no_data.addr = ip(3);
  report.interfaces.emplace(no_data.addr, no_data);

  EXPECT_EQ(report.observed_interfaces(), 3u);
  EXPECT_EQ(report.resolved_interfaces(), 1u);
  EXPECT_NEAR(report.resolved_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(report.no_data_interfaces(), 1u);
  ASSERT_NE(report.find(ip(1)), nullptr);
  EXPECT_TRUE(report.find(ip(1))->resolved());
}

TEST(Report, MultiRoleViaAliasSets) {
  CfsReport report;
  // One router (alias set) with a public interface (1) and a private one (2).
  report.aliases.sets.push_back({ip(1), ip(2)});
  report.links.push_back(
      link(PeeringKind::Public, ip(1), Asn(10), ip(100), Asn(20), IxpId(0)));
  report.links.push_back(
      link(PeeringKind::Private, ip(2), Asn(10), ip(200), Asn(30)));

  const auto stats = report.router_stats();
  // Router for set {1,2}, plus singleton far ends 100 and 200.
  EXPECT_EQ(stats.routers, 3u);
  EXPECT_EQ(stats.multi_role, 1u);
  EXPECT_EQ(stats.multi_ixp, 0u);
}

TEST(Report, MultiIxpRouters) {
  CfsReport report;
  report.aliases.sets.push_back({ip(1), ip(2)});
  report.links.push_back(
      link(PeeringKind::Public, ip(1), Asn(10), ip(100), Asn(20), IxpId(0)));
  report.links.push_back(
      link(PeeringKind::Public, ip(2), Asn(10), ip(200), Asn(30), IxpId(1)));

  const auto stats = report.router_stats();
  EXPECT_EQ(stats.multi_ixp, 1u);
  EXPECT_EQ(stats.multi_role, 0u);
}

TEST(Report, SingletonInterfacesCountAsRouters) {
  CfsReport report;  // no alias sets at all
  report.links.push_back(
      link(PeeringKind::Private, ip(1), Asn(10), ip(2), Asn(20)));
  const auto stats = report.router_stats();
  EXPECT_EQ(stats.routers, 2u);
  EXPECT_EQ(stats.multi_role, 0u);
}

TEST(Report, FarSideOfPublicLinkCountsAsIxpRouter) {
  CfsReport report;
  report.links.push_back(
      link(PeeringKind::Public, ip(1), Asn(10), ip(100), Asn(20), IxpId(7)));
  // The far LAN interface (100) is on a router with a public role.
  report.links.push_back(
      link(PeeringKind::Private, ip(100), Asn(20), ip(3), Asn(30)));
  const auto stats = report.router_stats();
  EXPECT_EQ(stats.multi_role, 1u);  // router of 100: public + private
}

}  // namespace
}  // namespace cfs
