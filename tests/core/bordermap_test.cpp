#include "core/bordermap.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct BorderMapFixture {
  MiniNet net;
  Asn a, b;
  LinkId foreign_link;  // numbered from A, terminating on B's router
  std::unique_ptr<IpToAsnService> ip2asn;

  BorderMapFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 2});
    b = net.add_as(1001, AsType::Transit, {1, 4});
    foreign_link = net.xconnect(b, a, 1, BusinessRel::CustomerProvider,
                                /*number_from_b=*/true);  // from A's space
    ip2asn = std::make_unique<IpToAsnService>(net.topo);
  }

  static Hop hop(Ipv4 addr) { return Hop{addr, 1.0, true}; }

  // Phantom-style trace: A-internal, A-egress, B-border (A-space ptp),
  // B-internal.
  TraceResult phantom_trace() const {
    const Link& link = net.topo.link(foreign_link);  // a-side = B's router
    TraceResult trace;
    trace.hops = {
        hop(net.topo.router(net.router(a, 2)).local_address),  // A internal
        hop(net.topo.router(net.router(a, 1)).local_address),  // A egress
        hop(link.a.address),   // B's border, raw-maps to A (foreign /30)
        hop(net.topo.router(net.router(b, 4)).local_address),  // B internal
    };
    return trace;
  }
};

TEST(BorderMap, RepairsForeignNumberedFarInterface) {
  BorderMapFixture fx;
  const Link& link = fx.net.topo.link(fx.foreign_link);
  ASSERT_EQ(fx.ip2asn->lookup(link.a.address), fx.a);  // the raw error

  BorderMapper mapper(*fx.ip2asn);
  mapper.ingest(fx.phantom_trace());
  mapper.ingest(fx.phantom_trace());
  const auto corrections = mapper.corrections();
  const auto it = corrections.find(link.a.address);
  ASSERT_NE(it, corrections.end());
  EXPECT_EQ(it->second, fx.b);
}

TEST(BorderMap, DoesNotTouchGenuineInternalInterfaces) {
  BorderMapFixture fx;
  BorderMapper mapper(*fx.ip2asn);
  mapper.ingest(fx.phantom_trace());
  mapper.ingest(fx.phantom_trace());
  const auto corrections = mapper.corrections();
  // The A-egress border interface precedes the foreign hop but its own
  // successors stay... the successor (the foreign /30) raw-maps to A, so
  // the egress must remain uncorrected.
  const Ipv4 egress = fx.net.topo.router(fx.net.router(fx.a, 1)).local_address;
  EXPECT_FALSE(corrections.contains(egress));
  const Ipv4 internal =
      fx.net.topo.router(fx.net.router(fx.a, 2)).local_address;
  EXPECT_FALSE(corrections.contains(internal));
}

TEST(BorderMap, RequiresMinimumObservations) {
  BorderMapFixture fx;
  BorderMapper mapper(*fx.ip2asn, BorderMapConfig{.min_observations = 3,
                                                  .majority = 0.75});
  mapper.ingest(fx.phantom_trace());
  mapper.ingest(fx.phantom_trace());
  EXPECT_TRUE(mapper.corrections().empty());
  mapper.ingest(fx.phantom_trace());
  EXPECT_FALSE(mapper.corrections().empty());
}

TEST(BorderMap, MixedSuccessorsBlockCorrection) {
  BorderMapFixture fx;
  const Link& link = fx.net.topo.link(fx.foreign_link);
  BorderMapper mapper(*fx.ip2asn);
  mapper.ingest(fx.phantom_trace());
  mapper.ingest(fx.phantom_trace());

  // A trace where the candidate continues inside A: proves the interface
  // really is A-internal, so no correction may be emitted.
  TraceResult stay_in_a;
  stay_in_a.hops = {
      BorderMapFixture::hop(
          fx.net.topo.router(fx.net.router(fx.a, 1)).local_address),
      BorderMapFixture::hop(link.a.address),
      BorderMapFixture::hop(
          fx.net.topo.router(fx.net.router(fx.a, 2)).local_address),
  };
  mapper.ingest(stay_in_a);
  EXPECT_FALSE(mapper.corrections().contains(link.a.address));
}

TEST(BorderMap, UnresponsiveNeighborsContributeNothing) {
  BorderMapFixture fx;
  const Link& link = fx.net.topo.link(fx.foreign_link);
  TraceResult gappy;
  gappy.hops = {
      Hop{Ipv4(0), 0.0, false},
      BorderMapFixture::hop(link.a.address),
      Hop{Ipv4(0), 0.0, false},
  };
  BorderMapper mapper(*fx.ip2asn);
  mapper.ingest(gappy);
  mapper.ingest(gappy);
  EXPECT_TRUE(mapper.corrections().empty());
}

TEST(BorderMap, IxpLanHopsIgnored) {
  BorderMapFixture fx;
  fx.net.join_ixp(fx.a, 1);
  const auto& port = fx.net.topo.ixp(fx.net.ix).ports.front();
  TraceResult trace;
  trace.hops = {
      BorderMapFixture::hop(
          fx.net.topo.router(fx.net.router(fx.a, 2)).local_address),
      BorderMapFixture::hop(port.lan_address),
  };
  BorderMapper mapper(*fx.ip2asn);
  mapper.ingest(trace);
  mapper.ingest(trace);
  EXPECT_EQ(mapper.interfaces_seen(), 1u);  // LAN address skipped
  EXPECT_TRUE(mapper.corrections().empty());
}

}  // namespace
}  // namespace cfs
