#include "core/reverse.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct ReverseFixture {
  MiniNet net;
  Asn a, e;
  LinkId ae_public;
  std::unique_ptr<LookingGlassDirectory> lgs;
  std::unique_ptr<VantagePointSet> vps;

  ReverseFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 4});
    e = net.add_as(10000, AsType::Eyeball, {3});
    net.join_ixp(a, 1);
    net.join_ixp(e, 3);
    ae_public = net.public_peer(a, e, BusinessRel::PeerPeer);

    lgs = std::make_unique<LookingGlassDirectory>(
        net.topo, LookingGlassDirectory::Config{.host_probability = 1.0,
                                                .bgp_support_probability = 0,
                                                .cooldown_s = 60,
                                                .seed = 1});
    PlatformConfig pcfg;
    pcfg.atlas_target = 10;  // hosted in E (the only eyeball)
    pcfg.iplane_target = 0;
    pcfg.ark_target = 0;
    vps = std::make_unique<VantagePointSet>(net.topo, *lgs, pcfg);
  }

  PeeringObservation public_obs() {
    const Link& link = net.topo.link(ae_public);
    PeeringObservation obs;
    obs.kind = PeeringKind::Public;
    obs.near_addr = net.topo.router(link.a.router).local_address;
    obs.near_as = a;
    obs.far_addr = link.b.address;
    obs.far_as = e;
    obs.ixp = net.ix;
    return obs;
  }
};

TEST(Reverse, PlansProbesFromFarSideVantagePoints) {
  ReverseFixture fx;
  const auto obs = fx.public_obs();
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[2], fx.net.fac[3]}, 1);  // unresolved
  interfaces.emplace(far.addr, far);

  const auto plan =
      plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 8);
  ASSERT_FALSE(plan.empty());
  for (const ReverseProbe& probe : plan) {
    EXPECT_EQ(fx.vps->vp(probe.vp).asn, fx.e);       // inside the far AS
    EXPECT_EQ(fx.net.topo.origin_of(probe.target), fx.a);  // toward near AS
  }
}

TEST(Reverse, SkipsResolvedFarEnds) {
  ReverseFixture fx;
  const auto obs = fx.public_obs();
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[3]}, 1);  // already resolved
  interfaces.emplace(far.addr, far);
  EXPECT_TRUE(
      plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 8).empty());
}

TEST(Reverse, SkipsPrivateObservations) {
  ReverseFixture fx;
  auto obs = fx.public_obs();
  obs.kind = PeeringKind::Private;
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[2], fx.net.fac[3]}, 1);
  interfaces.emplace(far.addr, far);
  EXPECT_TRUE(
      plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 8).empty());
}

TEST(Reverse, HonoursBudget) {
  ReverseFixture fx;
  const auto obs = fx.public_obs();
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[2], fx.net.fac[3]}, 1);
  interfaces.emplace(far.addr, far);
  EXPECT_LE(
      plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 1).size(),
      1u);
  EXPECT_TRUE(
      plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 0).empty());
}

TEST(Reverse, PlatformFilterRestrictsVantagePoints) {
  ReverseFixture fx;
  const auto obs = fx.public_obs();
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[2], fx.net.fac[3]}, 1);
  interfaces.emplace(far.addr, far);
  // All VPs in E are Atlas hosts; filtering to LookingGlass excludes them.
  EXPECT_TRUE(plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 8,
                                  Platform::LookingGlass)
                  .empty());
  EXPECT_FALSE(plan_reverse_probes(fx.net.topo, *fx.vps, interfaces, {obs}, 8,
                                   Platform::RipeAtlas)
                   .empty());
}

TEST(Reverse, DeduplicatesFarAddresses) {
  ReverseFixture fx;
  const auto obs = fx.public_obs();
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  InterfaceInference far;
  far.addr = obs.far_addr;
  far.asn = fx.e;
  far.constrain({fx.net.fac[2], fx.net.fac[3]}, 1);
  interfaces.emplace(far.addr, far);
  // The same observation repeated must not double the plan.
  const auto plan = plan_reverse_probes(fx.net.topo, *fx.vps, interfaces,
                                        {obs, obs, obs}, 16);
  EXPECT_LE(plan.size(), 2u);  // at most two targets per far interface
}

}  // namespace
}  // namespace cfs
