#include "data/dns.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

DnsConfig reliable() {
  DnsConfig cfg;
  cfg.record_missing = 0.0;
  cfg.stale_wrong = 0.0;
  cfg.documented_operator_fraction = 1.0;
  cfg.ixp_lan_named = 1.0;
  return cfg;
}

// Sets an AS's convention after construction (MiniNet defaults to nothing).
void set_convention(Topology& topo, Asn asn, DnsConvention conv) {
  topo.mutable_as(asn).dns = conv;
}

TEST(Dns, NoneConventionHasNoPtr) {
  MiniNet net;
  const Asn c = net.add_as(5000, AsType::Content, {1});
  set_convention(net.topo, c, DnsConvention::None);
  DnsNames names(net.topo, reliable());
  const Ipv4 addr = net.topo.router(net.router(c, 1)).local_address;
  EXPECT_FALSE(names.ptr(addr).has_value());
}

TEST(Dns, FacilityCodeEncodesFacilityAndMetro) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {1, 4});
  set_convention(net.topo, t, DnsConvention::FacilityCode);
  DnsNames names(net.topo, reliable());

  const RouterId router = net.router(t, 1);
  const Ipv4 addr = net.topo.router(router).local_address;
  const auto host = names.ptr(addr);
  ASSERT_TRUE(host.has_value());
  const FacilityId fac = net.topo.router(router).facility;
  EXPECT_NE(host->find(names.facility_code(fac)), std::string::npos);
  EXPECT_NE(host->find(names.metro_code(net.m0)), std::string::npos);
  EXPECT_NE(host->find("as1000.example.net"), std::string::npos);
}

TEST(Dns, ParserRoundTripsFacilityCodeHostnames) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {1, 4});
  set_convention(net.topo, t, DnsConvention::FacilityCode);
  DnsNames names(net.topo, reliable());
  DropParser parser(names);

  for (const int fidx : {1, 4}) {
    const RouterId router = net.router(t, fidx);
    const Ipv4 addr = net.topo.router(router).local_address;
    const auto hint = parser.geolocate(addr);
    EXPECT_EQ(hint.level, DnsGeoHint::Level::Facility);
    EXPECT_EQ(hint.facility, net.topo.router(router).facility);
    EXPECT_EQ(hint.metro, net.topo.metro_of(hint.facility));
  }
}

TEST(Dns, UndocumentedOperatorsOnlyGeolocateToMetro) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {1});
  set_convention(net.topo, t, DnsConvention::FacilityCode);
  DnsConfig cfg = reliable();
  cfg.documented_operator_fraction = 0.0;
  DnsNames names(net.topo, cfg);
  DropParser parser(names);

  const Ipv4 addr = net.topo.router(net.router(t, 1)).local_address;
  const auto hint = parser.geolocate(addr);
  EXPECT_EQ(hint.level, DnsGeoHint::Level::Metro);
  EXPECT_EQ(hint.metro, net.m0);
}

TEST(Dns, AirportAndCityConventionsGiveMetroHints) {
  MiniNet net;
  const Asn a = net.add_as(1000, AsType::Transit, {1});
  const Asn b = net.add_as(1001, AsType::Transit, {4});
  set_convention(net.topo, a, DnsConvention::AirportCode);
  set_convention(net.topo, b, DnsConvention::CityName);
  DnsNames names(net.topo, reliable());
  DropParser parser(names);

  const auto hint_a =
      parser.geolocate(net.topo.router(net.router(a, 1)).local_address);
  EXPECT_EQ(hint_a.level, DnsGeoHint::Level::Metro);
  EXPECT_EQ(hint_a.metro, net.m0);

  const auto hint_b =
      parser.geolocate(net.topo.router(net.router(b, 4)).local_address);
  EXPECT_EQ(hint_b.level, DnsGeoHint::Level::Metro);
  EXPECT_EQ(hint_b.metro, net.m1);
}

TEST(Dns, OpaqueNamesCarryNoHint) {
  MiniNet net;
  const Asn a = net.add_as(1000, AsType::Transit, {1});
  set_convention(net.topo, a, DnsConvention::Opaque);
  DnsNames names(net.topo, reliable());
  DropParser parser(names);
  const Ipv4 addr = net.topo.router(net.router(a, 1)).local_address;
  ASSERT_TRUE(names.ptr(addr).has_value());
  EXPECT_EQ(parser.geolocate(addr).level, DnsGeoHint::Level::None);
}

TEST(Dns, IxpLanNamesGeolocateToIxpMetro) {
  MiniNet net;
  const Asn c = net.add_as(5000, AsType::Content, {1});
  set_convention(net.topo, c, DnsConvention::None);
  net.join_ixp(c, 1);
  DnsNames names(net.topo, reliable());
  DropParser parser(names);
  const auto& port = net.topo.ixp(net.ix).ports.front();
  const auto host = names.ptr(port.lan_address);
  ASSERT_TRUE(host.has_value());
  EXPECT_NE(host->find("fra-ix"), std::string::npos);
  const auto hint = parser.parse(*host);
  EXPECT_EQ(hint.level, DnsGeoHint::Level::Metro);
  EXPECT_EQ(hint.metro, net.m0);
}

TEST(Dns, StaleConventionSometimesLies) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {1, 2, 4});
  set_convention(net.topo, t, DnsConvention::Stale);
  DnsConfig cfg = reliable();
  cfg.stale_wrong = 1.0;  // every stale name points elsewhere
  DnsNames names(net.topo, cfg);
  DropParser parser(names);

  int wrong = 0;
  int named = 0;
  for (const int fidx : {1, 2, 4}) {
    const RouterId router = net.router(t, fidx);
    const Ipv4 addr = net.topo.router(router).local_address;
    const auto hint = parser.geolocate(addr);
    if (hint.level != DnsGeoHint::Level::Facility) continue;
    ++named;
    wrong += hint.facility != net.topo.router(router).facility;
  }
  ASSERT_GT(named, 0);
  EXPECT_GT(wrong, 0);
}

TEST(Dns, RecordRotRemovesPtrs) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {1});
  set_convention(net.topo, t, DnsConvention::AirportCode);
  DnsConfig cfg = reliable();
  cfg.record_missing = 1.0;
  DnsNames names(net.topo, cfg);
  const Ipv4 addr = net.topo.router(net.router(t, 1)).local_address;
  EXPECT_FALSE(names.ptr(addr).has_value());
}

TEST(Dns, UnknownAddressHasNoPtr) {
  MiniNet net;
  net.add_as(1000, AsType::Transit, {1});
  DnsNames names(net.topo, reliable());
  EXPECT_FALSE(names.ptr(*Ipv4::parse("9.9.9.9")).has_value());
}

TEST(Dns, PaperLikeCoverageOnGeneratedTopology) {
  // With default (lossy) DNS config, a substantial share of peering
  // interfaces should lack PTRs or geo hints, echoing the paper's 29% /
  // 55% / 32% breakdown in spirit.
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  DnsNames names(topo, DnsConfig{});
  DropParser parser(names);
  std::size_t no_ptr = 0;
  std::size_t ptr_no_hint = 0;
  std::size_t hinted = 0;
  for (const auto& router : topo.routers()) {
    const auto ptr = names.ptr(router.local_address);
    if (!ptr) {
      ++no_ptr;
      continue;
    }
    const auto hint = parser.parse(*ptr);
    if (hint.level == DnsGeoHint::Level::None)
      ++ptr_no_hint;
    else
      ++hinted;
  }
  const double total = static_cast<double>(no_ptr + ptr_no_hint + hinted);
  EXPECT_GT(no_ptr / total, 0.1);
  EXPECT_GT(ptr_no_hint / total, 0.1);
  EXPECT_GT(hinted / total, 0.1);
  EXPECT_LT(hinted / total, 0.8);
}

}  // namespace
}  // namespace cfs
