#include <gtest/gtest.h>

#include <algorithm>

#include "data/facility_db.h"
#include "data/geoip.h"
#include "data/ip2asn.h"
#include "data/normalize.h"
#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

// ---- CityNormalizer ----

TEST(Normalize, CanonicalNamesResolve) {
  MiniNet net;
  CityNormalizer norm(net.topo);
  EXPECT_EQ(norm.normalize("Frankfurt"), net.m0);
  EXPECT_EQ(norm.normalize("frankfurt"), net.m0);
  EXPECT_EQ(norm.normalize("LONDON"), net.m1);
}

TEST(Normalize, CatalogAliasesFoldIntoMetro) {
  MiniNet net;
  CityNormalizer norm(net.topo);
  // "Slough" and "Docklands" are London aliases in the catalog.
  EXPECT_EQ(norm.normalize("Slough"), net.m1);
  EXPECT_EQ(norm.normalize("Docklands"), net.m1);
}

TEST(Normalize, UnknownNameWithoutLocationFails) {
  MiniNet net;
  CityNormalizer norm(net.topo);
  EXPECT_FALSE(norm.normalize("Atlantis").has_value());
}

TEST(Normalize, UnknownNameFallsBackToCoordinates) {
  MiniNet net;
  CityNormalizer norm(net.topo);
  const GeoPoint near_frankfurt{50.12, 8.70};
  EXPECT_EQ(norm.normalize("Atlantis", near_frankfurt), net.m0);
}

TEST(Normalize, ByLocationRejectsFarAwayPoints) {
  MiniNet net;
  CityNormalizer norm(net.topo);
  const GeoPoint mid_atlantic{40.0, -35.0};
  EXPECT_FALSE(norm.by_location(mid_atlantic).has_value());
}

// ---- PeeringDb ----

TEST(PeeringDb, PerfectConfigIsComplete) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  PeeringDbConfig cfg;
  cfg.as_record_missing = 0.0;
  cfg.fac_link_missing = 0.0;
  cfg.ixp_record_missing = 0.0;
  cfg.ixp_fac_link_missing = 0.0;
  cfg.stale_link = 0.0;
  PeeringDb db(topo, cfg);
  for (const auto& as : topo.ases()) {
    ASSERT_TRUE(db.has_as_record(as.asn));
    EXPECT_EQ(db.facilities_of(as.asn), as.facilities);
  }
  for (const auto& ixp : topo.ixps())
    EXPECT_EQ(db.ixp_facilities(ixp.id), ixp.facilities());
}

TEST(PeeringDb, MissingnessRatesRoughlyHonoured) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  PeeringDbConfig cfg;
  cfg.as_record_missing = 0.2;
  cfg.fac_link_missing = 0.3;
  cfg.stale_link = 0.0;
  PeeringDb db(topo, cfg);

  const double record_fraction =
      static_cast<double>(db.as_records()) / topo.ases().size();
  EXPECT_NEAR(record_fraction, 0.8, 0.06);

  std::size_t truth_links = 0;
  for (const auto& as : topo.ases())
    if (db.has_as_record(as.asn)) truth_links += as.facilities.size();
  const double link_fraction =
      static_cast<double>(db.total_as_facility_links()) / truth_links;
  EXPECT_NEAR(link_fraction, 0.7, 0.06);
}

TEST(PeeringDb, RecordsAreSortedSubsetsOfTruthWithoutStale) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  PeeringDbConfig cfg;
  cfg.stale_link = 0.0;
  PeeringDb db(topo, cfg);
  for (const auto& as : topo.ases()) {
    const auto& record = db.facilities_of(as.asn);
    EXPECT_TRUE(std::is_sorted(record.begin(), record.end()));
    for (const FacilityId fac : record)
      EXPECT_TRUE(std::binary_search(as.facilities.begin(),
                                     as.facilities.end(), fac));
  }
}

TEST(PeeringDb, AugmentMergesAndDeduplicates) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  PeeringDbConfig cfg;
  cfg.fac_link_missing = 1.0;  // records exist but are empty
  cfg.as_record_missing = 0.0;
  cfg.stale_link = 0.0;
  PeeringDb db(topo, cfg);
  const auto& as = topo.ases().front();
  EXPECT_TRUE(db.facilities_of(as.asn).empty());
  db.augment_as(as.asn, as.facilities);
  db.augment_as(as.asn, as.facilities);  // duplicate augmentation
  EXPECT_EQ(db.facilities_of(as.asn), as.facilities);
}

TEST(PeeringDb, RemoveFacilityStripsEverywhere) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  PeeringDbConfig cfg;
  cfg.as_record_missing = 0.0;
  cfg.fac_link_missing = 0.0;
  cfg.stale_link = 0.0;
  PeeringDb db(topo, cfg);
  // Pick a facility referenced by at least one AS.
  const FacilityId victim = topo.ases().front().facilities.front();
  const std::size_t touched = db.remove_facility(victim);
  EXPECT_GT(touched, 0u);
  for (const auto& as : topo.ases()) {
    const auto& record = db.facilities_of(as.asn);
    EXPECT_FALSE(std::binary_search(record.begin(), record.end(), victim));
  }
}

// ---- FacilityDatabase (assembly + Figure 2 semantics) ----

TEST(FacilityDatabase, WebsiteAugmentationFillsGaps) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  PeeringDbConfig pcfg;
  pcfg.fac_link_missing = 0.5;
  pcfg.stale_link = 0.0;
  PeeringDb raw(topo, pcfg);

  WebsiteConfig wcfg;
  wcfg.tier1_noc = wcfg.transit_noc = wcfg.content_noc = 1.0;
  wcfg.eyeball_noc = wcfg.enterprise_noc = 1.0;
  NocWebsiteSource noc(topo, wcfg);
  IxpWebsiteSource ixps(topo, wcfg);
  FacilityDatabase db(topo, std::move(raw), noc, ixps);

  // With every NOC publishing, the merged DB is complete for every AS.
  for (const auto& as : topo.ases())
    EXPECT_EQ(db.facilities_of(as.asn), as.facilities) << as.name;

  const auto totals = db.coverage_totals();
  EXPECT_EQ(totals.checked_ases, topo.ases().size());
  EXPECT_GT(totals.missing_links, 0u);
  EXPECT_GT(totals.ases_with_missing, 0u);
}

TEST(FacilityDatabase, CoverageReportSortedAndConsistent) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  PeeringDb raw(topo, PeeringDbConfig{});
  WebsiteConfig wcfg;
  NocWebsiteSource noc(topo, wcfg);
  IxpWebsiteSource ixps(topo, wcfg);
  FacilityDatabase db(topo, std::move(raw), noc, ixps);

  const auto& report = db.coverage_report();
  ASSERT_FALSE(report.empty());
  for (std::size_t i = 1; i < report.size(); ++i)
    EXPECT_GE(report[i - 1].website_facilities,
              report[i].website_facilities);
  for (const auto& cov : report)
    EXPECT_LE(cov.peeringdb_facilities, cov.website_facilities);
}

// ---- IpToAsnService ----

TEST(Ip2Asn, ForeignNumberedPtpMapsToWrongAs) {
  MiniNet net;
  const Asn a = net.add_as(1000, AsType::Transit, {1});
  const Asn c = net.add_as(5000, AsType::Content, {1});
  // Numbered from A's space: C's interface resolves to A — the error.
  const LinkId lid =
      net.xconnect(c, a, 1, BusinessRel::CustomerProvider, true);
  const Link& link = net.topo.link(lid);  // numbered from A (b side)
  IpToAsnService svc(net.topo);
  EXPECT_EQ(svc.lookup(link.a.address), a);  // C's router, A's address space
  EXPECT_EQ(svc.lookup(link.b.address), a);
}

TEST(Ip2Asn, IxpLanAddressesAreUnannounced) {
  MiniNet net;
  const Asn c = net.add_as(5000, AsType::Content, {1});
  net.join_ixp(c, 1);
  const auto& port = net.topo.ixp(net.ix).ports.front();
  IpToAsnService svc(net.topo);
  EXPECT_FALSE(svc.lookup(port.lan_address).has_value());
  EXPECT_EQ(svc.ixp_of(port.lan_address), net.ix);
}

TEST(Ip2Asn, RegularAddressesResolveToOrigin) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  IpToAsnService svc(topo);
  for (const auto& as : topo.ases()) {
    const auto& block = as.prefixes.front();
    EXPECT_EQ(svc.lookup(block.at(77)), as.asn);
    EXPECT_EQ(svc.matched_prefix(block.at(77)), block);
  }
  EXPECT_FALSE(svc.lookup(*Ipv4::parse("8.8.8.8")).has_value());
}

// ---- GeoIpDb ----

TEST(GeoIp, GlobalNetworkCollapsesToHeadquarters) {
  MiniNet net;
  // Content AS present in both metros; HQ = first facility (Frankfurt).
  const Asn c = net.add_as(5000, AsType::Content, {1, 4});
  GeoIpDb db(net.topo, GeoIpConfig{.garbage_entry = 0.0, .seed = 1});
  const auto& block = net.topo.as_of(c).prefixes.front();
  // Addresses used in London still geolocate to the HQ metro.
  const auto entry = db.lookup(block.at(9999));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->metro, net.m0);
  EXPECT_EQ(entry->country, "DE");
}

TEST(GeoIp, UnknownAddressesMiss) {
  MiniNet net;
  net.add_as(5000, AsType::Content, {1});
  GeoIpDb db(net.topo, GeoIpConfig{});
  EXPECT_FALSE(db.lookup(*Ipv4::parse("9.9.9.9")).has_value());
}

TEST(GeoIp, MetroAccuracyIsPoorForGlobalNetworksButCountryDecent) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  GeoIpDb db(topo, GeoIpConfig{});
  std::size_t metro_right = 0;
  std::size_t country_right = 0;
  std::size_t total = 0;
  for (const auto& router : topo.routers()) {
    const auto entry = db.lookup(router.local_address);
    if (!entry) continue;
    const MetroId truth = topo.metro_of(router.facility);
    ++total;
    metro_right += entry->metro == truth;
    country_right += entry->country == topo.metro(truth).country;
  }
  ASSERT_GT(total, 100u);
  const double metro_acc = static_cast<double>(metro_right) / total;
  const double country_acc = static_cast<double>(country_right) / total;
  EXPECT_LT(metro_acc, 0.75);
  EXPECT_GT(country_acc, metro_acc);
}

}  // namespace
}  // namespace cfs
