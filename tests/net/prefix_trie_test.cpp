#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace cfs {
namespace {

Prefix pfx(const std::string& text) { return *Prefix::parse(text); }
Ipv4 ip(const std::string& text) { return *Ipv4::parse(text); }

TEST(PrefixTrie, EmptyLookupMisses) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(ip("1.2.3.4")).has_value());
}

TEST(PrefixTrie, ExactMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  const auto hit = trie.lookup(ip("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 1);
  EXPECT_EQ(hit->first.to_string(), "10.0.0.0/8");
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  EXPECT_EQ(trie.lookup(ip("10.1.2.3"))->second, 24);
  EXPECT_EQ(trie.lookup(ip("10.1.9.9"))->second, 16);
  EXPECT_EQ(trie.lookup(ip("10.9.9.9"))->second, 8);
  EXPECT_FALSE(trie.lookup(ip("11.0.0.0")).has_value());
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(ip("10.0.0.1"))->second, 2);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(pfx("1.2.3.4/32"), 99);
  EXPECT_EQ(trie.lookup(ip("1.2.3.4"))->second, 99);
  EXPECT_FALSE(trie.lookup(ip("1.2.3.5")).has_value());
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 7);
  trie.insert(pfx("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.lookup(ip("99.0.0.1"))->second, 7);
  EXPECT_EQ(trie.lookup(ip("10.0.0.1"))->second, 8);
}

TEST(PrefixTrie, FindExact) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.1.0.0/16"), 16);
  EXPECT_NE(trie.find_exact(pfx("10.1.0.0/16")), nullptr);
  EXPECT_EQ(trie.find_exact(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.find_exact(pfx("10.1.0.0/24")), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("20.0.0.0/8"), 2);
  trie.insert(pfx("10.5.0.0/16"), 3);
  int count = 0;
  int sum = 0;
  trie.for_each([&](const Prefix&, int v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

// Property test: trie lookup agrees with a brute-force scan over random
// prefixes and addresses.
TEST(PrefixTrie, MatchesBruteForceOnRandomInput) {
  Rng rng(99);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 300; ++i) {
    const int len = 4 + static_cast<int>(rng.uniform(25));
    const Prefix p(Ipv4(static_cast<std::uint32_t>(rng.next())), len);
    trie.insert(p, prefixes.size());
    prefixes.push_back(p);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next()));
    // Brute force: longest covering prefix, latest insert wins ties (since
    // insert overwrites equal prefixes; distinct vector entries may repeat).
    int best_len = -1;
    std::size_t best_val = 0;
    for (std::size_t k = 0; k < prefixes.size(); ++k) {
      if (prefixes[k].contains(addr) && prefixes[k].length() >= best_len) {
        // For equal prefixes the trie stores the last inserted value, and
        // identical (network,len) pairs compare equal here, so >= mirrors it.
        if (prefixes[k].length() > best_len ||
            prefixes[k] == prefixes[best_val]) {
          best_len = prefixes[k].length();
          best_val = k;
        }
      }
    }
    const auto hit = trie.lookup(addr);
    if (best_len < 0) {
      EXPECT_FALSE(hit.has_value());
    } else {
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->first.length(), best_len);
      EXPECT_TRUE(hit->first.contains(addr));
    }
  }
}

}  // namespace
}  // namespace cfs
