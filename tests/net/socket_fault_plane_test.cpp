// SocketFaultPlane (src/net/faults.h): the transport chaos schedule must
// be deterministic, order-independent and an exact identity at zero
// intensity — the same contract FaultPlane established for the
// measurement plane in the degraded-mode work.
#include <gtest/gtest.h>

#include <numeric>

#include "net/faults.h"

namespace cfs {
namespace {

std::size_t plan_bytes(const SocketWritePlan& plan) {
  return std::accumulate(plan.chunks.begin(), plan.chunks.end(),
                         std::size_t{0});
}

TEST(SocketFaultPlaneTest, ZeroIntensityPlanIsTheIdentity) {
  SocketFaultPlan plan;  // all fractions zero
  EXPECT_FALSE(plan.any());
  const SocketFaultPlane plane(plan, 42);
  for (std::uint64_t conn = 1; conn <= 4; ++conn) {
    const SocketWritePlan w = plane.write_plan(conn, 7, 513);
    ASSERT_EQ(w.chunks.size(), 1u);
    EXPECT_EQ(w.chunks[0], 513u);
    EXPECT_FALSE(w.torn());
    EXPECT_FALSE(w.disconnect_before_read);
    EXPECT_EQ(w.stall_before_chunk, -1);
    EXPECT_EQ(w.read_stall_ms, 0.0);
    EXPECT_TRUE(w.expects_response());
  }
}

TEST(SocketFaultPlaneTest, ChunksAlwaysPartitionTheDeliveredBytes) {
  SocketFaultPlan plan;
  plan.byte_write_fraction = 0.4;
  plan.torn_frame_fraction = 0.3;
  plan.disconnect_fraction = 0.2;
  plan.stall_fraction = 0.2;
  plan.read_stall_fraction = 0.2;
  const SocketFaultPlane plane(plan, 7);
  int torn_seen = 0;
  for (std::uint64_t conn = 1; conn <= 8; ++conn) {
    for (std::uint64_t request = 0; request < 64; ++request) {
      const std::size_t frame = 5 + (conn * 37 + request * 11) % 900;
      const SocketWritePlan w = plane.write_plan(conn, request, frame);
      if (w.torn()) {
        ++torn_seen;
        // A strict prefix: at least one byte withheld, so the daemon is
        // left holding a partial frame.
        EXPECT_LT(w.truncate_at, frame);
        EXPECT_EQ(plan_bytes(w), w.truncate_at);
        EXPECT_FALSE(w.expects_response());
      } else {
        EXPECT_EQ(plan_bytes(w), frame);
      }
      if (w.stall_before_chunk >= 0)
        EXPECT_LT(static_cast<std::size_t>(w.stall_before_chunk),
                  w.chunks.size());
      // Torn and disconnect are mutually exclusive by construction.
      if (w.torn()) EXPECT_FALSE(w.disconnect_before_read);
    }
  }
  EXPECT_GT(torn_seen, 0) << "30% tear rate never fired across 512 draws";
}

TEST(SocketFaultPlaneTest, SameSeedReplaysByteForByte) {
  SocketFaultPlan plan;
  plan.byte_write_fraction = 0.3;
  plan.torn_frame_fraction = 0.3;
  plan.disconnect_fraction = 0.3;
  plan.stall_fraction = 0.3;
  plan.read_stall_fraction = 0.3;
  const SocketFaultPlane a(plan, 99);
  const SocketFaultPlane b(plan, 99);
  for (std::uint64_t conn = 1; conn <= 6; ++conn) {
    for (std::uint64_t request = 0; request < 32; ++request) {
      const SocketWritePlan wa = a.write_plan(conn, request, 777);
      const SocketWritePlan wb = b.write_plan(conn, request, 777);
      EXPECT_EQ(wa.chunks, wb.chunks);
      EXPECT_EQ(wa.truncate_at, wb.truncate_at);
      EXPECT_EQ(wa.stall_before_chunk, wb.stall_before_chunk);
      EXPECT_EQ(wa.disconnect_before_read, wb.disconnect_before_read);
      EXPECT_EQ(wa.read_stall_ms, wb.read_stall_ms);
    }
  }
}

TEST(SocketFaultPlaneTest, DifferentSeedsDiverge) {
  SocketFaultPlan plan;
  plan.torn_frame_fraction = 0.5;
  plan.byte_write_fraction = 0.5;
  const SocketFaultPlane a(plan, 1);
  const SocketFaultPlane b(plan, 2);
  int diverged = 0;
  for (std::uint64_t request = 0; request < 64; ++request) {
    const SocketWritePlan wa = a.write_plan(1, request, 400);
    const SocketWritePlan wb = b.write_plan(1, request, 400);
    if (wa.chunks != wb.chunks || wa.truncate_at != wb.truncate_at)
      ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(SocketFaultPlaneTest, ByteAtATimeDribblesEverySingleByte) {
  SocketFaultPlan plan;
  plan.byte_write_fraction = 1.0;
  const SocketFaultPlane plane(plan, 5);
  const SocketWritePlan w = plane.write_plan(3, 9, 57);
  ASSERT_EQ(w.chunks.size(), 57u);
  for (const std::size_t chunk : w.chunks) EXPECT_EQ(chunk, 1u);
}

TEST(SocketFaultPlaneTest, DecisionsAreOrderIndependent) {
  SocketFaultPlan plan;
  plan.torn_frame_fraction = 0.4;
  plan.stall_fraction = 0.4;
  const SocketFaultPlane plane(plan, 11);
  // Query (conn=2, request=5) cold, then again after unrelated queries:
  // pure hashing means history cannot perturb it.
  const SocketWritePlan first = plane.write_plan(2, 5, 300);
  for (std::uint64_t i = 0; i < 50; ++i) (void)plane.write_plan(9, i, 123);
  const SocketWritePlan again = plane.write_plan(2, 5, 300);
  EXPECT_EQ(first.chunks, again.chunks);
  EXPECT_EQ(first.truncate_at, again.truncate_at);
  EXPECT_EQ(first.stall_before_chunk, again.stall_before_chunk);
}

}  // namespace
}  // namespace cfs
