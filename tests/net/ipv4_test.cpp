#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

TEST(Ipv4, ToStringRoundTrip) {
  const Ipv4 addr(0xC0A80101);  // 192.168.1.1
  EXPECT_EQ(addr.to_string(), "192.168.1.1");
  const auto parsed = Ipv4::parse("192.168.1.1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4, ParseEdgeValues) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1), Ipv4(2));
  EXPECT_EQ(Ipv4(7), Ipv4(7));
}

TEST(Prefix, CanonicalisesHostBits) {
  const Prefix p(Ipv4(0xC0A801FF), 24);  // 192.168.1.255/24
  EXPECT_EQ(p.network().to_string(), "192.168.1.0");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(*Ipv4::parse("10.0.0.0"), 8);
  EXPECT_TRUE(p.contains(*Ipv4::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*Ipv4::parse("11.0.0.0")));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix p16(*Ipv4::parse("10.1.0.0"), 16);
  const Prefix p24(*Ipv4::parse("10.1.2.0"), 24);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(Prefix, SizeAndAt) {
  const Prefix p(*Ipv4::parse("10.1.2.0"), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1).to_string(), "10.1.2.1");
  EXPECT_EQ(p.at(2).to_string(), "10.1.2.2");
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix all(Ipv4(0), 0);
  EXPECT_TRUE(all.contains(Ipv4(0)));
  EXPECT_TRUE(all.contains(Ipv4(0xFFFFFFFF)));
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::parse("185.0.4.0/22");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "185.0.4.0/22");
  EXPECT_EQ(p->length(), 22);
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("/8").has_value());
}

TEST(Prefix, HostRoute) {
  const Prefix host(*Ipv4::parse("1.2.3.4"), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(*Ipv4::parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(*Ipv4::parse("1.2.3.5")));
}

}  // namespace
}  // namespace cfs
