#include "topology/ixp.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

// Fabric used throughout: core(0) <- backhaul(1) <- access(2,3),
//                         core(0) <- access(4)
Ixp make_fabric() {
  Ixp ixp;
  ixp.name = "TEST-IX";
  ixp.metro = MetroId(0);
  ixp.peering_lan = Prefix(*Ipv4::parse("185.0.0.0"), 22);
  ixp.switches = {
      {IxpSwitch::Kind::Core, FacilityId(0), 0},
      {IxpSwitch::Kind::Backhaul, FacilityId(1), 0},
      {IxpSwitch::Kind::Access, FacilityId(1), 1},
      {IxpSwitch::Kind::Access, FacilityId(2), 1},
      {IxpSwitch::Kind::Access, FacilityId(3), 0},
  };
  return ixp;
}

IxpPort make_port(Asn member, RouterId router, Ipv4 addr,
                  std::uint32_t access_switch) {
  IxpPort p;
  p.member = member;
  p.router = router;
  p.lan_address = addr;
  p.access_switch = access_switch;
  return p;
}

TEST(Ixp, FacilitiesAreUniqueAccessLocations) {
  const Ixp ixp = make_fabric();
  const auto facs = ixp.facilities();
  ASSERT_EQ(facs.size(), 3u);
  EXPECT_EQ(facs[0], FacilityId(1));
  EXPECT_EQ(facs[1], FacilityId(2));
  EXPECT_EQ(facs[2], FacilityId(3));
}

TEST(Ixp, AccessSwitchAt) {
  const Ixp ixp = make_fabric();
  ASSERT_TRUE(ixp.access_switch_at(FacilityId(2)).has_value());
  EXPECT_EQ(*ixp.access_switch_at(FacilityId(2)), 3u);
  // Facility 0 hosts only the core switch, not an access switch.
  EXPECT_FALSE(ixp.access_switch_at(FacilityId(0)).has_value());
  EXPECT_FALSE(ixp.access_switch_at(FacilityId(9)).has_value());
}

TEST(Ixp, SwitchDistanceSameSwitch) {
  const Ixp ixp = make_fabric();
  EXPECT_EQ(ixp.switch_distance(2, 2), 0);
}

TEST(Ixp, SwitchDistanceSameBackhaul) {
  const Ixp ixp = make_fabric();
  EXPECT_EQ(ixp.switch_distance(2, 3), 1);
  EXPECT_EQ(ixp.switch_distance(3, 2), 1);
}

TEST(Ixp, SwitchDistanceViaCore) {
  const Ixp ixp = make_fabric();
  EXPECT_EQ(ixp.switch_distance(2, 4), 2);
  EXPECT_EQ(ixp.switch_distance(4, 3), 2);
}

TEST(Ixp, NearestPortPrefersSameBackhaul) {
  Ixp ixp = make_fabric();
  const Asn b(20);
  // Member B has ports at access switch 3 (same backhaul as 2) and 4 (core).
  ixp.ports.push_back(
      make_port(b, RouterId(1), ixp.peering_lan.at(1), 4));
  ixp.ports.push_back(
      make_port(b, RouterId(2), ixp.peering_lan.at(2), 3));
  const auto nearest = ixp.nearest_port(b, 2);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(ixp.ports[*nearest].router, RouterId(2));
}

TEST(Ixp, NearestPortExactSwitchBeatsBackhaul) {
  Ixp ixp = make_fabric();
  const Asn b(20);
  ixp.ports.push_back(make_port(b, RouterId(1), ixp.peering_lan.at(1), 3));
  ixp.ports.push_back(make_port(b, RouterId(2), ixp.peering_lan.at(2), 2));
  const auto nearest = ixp.nearest_port(b, 2);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(ixp.ports[*nearest].router, RouterId(2));
}

TEST(Ixp, NearestPortMissingMember) {
  const Ixp ixp = make_fabric();
  EXPECT_FALSE(ixp.nearest_port(Asn(42), 2).has_value());
}

TEST(Ixp, PortLookupHelpers) {
  Ixp ixp = make_fabric();
  const Asn a(10);
  const Asn b(20);
  ixp.ports.push_back(make_port(a, RouterId(1), ixp.peering_lan.at(1), 2));
  ixp.ports.push_back(make_port(b, RouterId(2), ixp.peering_lan.at(2), 3));
  ixp.ports.push_back(make_port(b, RouterId(3), ixp.peering_lan.at(3), 4));

  EXPECT_TRUE(ixp.is_member(a));
  EXPECT_TRUE(ixp.is_member(b));
  EXPECT_FALSE(ixp.is_member(Asn(99)));

  EXPECT_EQ(ixp.ports_of(b).size(), 2u);
  EXPECT_EQ(ixp.ports_of(a).size(), 1u);
  EXPECT_NE(ixp.port_of(b, RouterId(3)), nullptr);
  EXPECT_EQ(ixp.port_of(b, RouterId(9)), nullptr);
}

}  // namespace
}  // namespace cfs
