#include "topology/topology.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

// Hand-built micro-topology: one metro, two facilities, two ASes with one
// router each, joined by a private cross-connect.
struct Fixture {
  Topology topo;
  MetroId metro;
  FacilityId f1, f2;
  Asn a{100}, b{200};
  RouterId ra, rb;

  Fixture() {
    metro = topo.add_metro(
        Metro{{}, "Testville", "TS", Region::Europe, {50.0, 8.0}});
    const OperatorId op =
        topo.add_operator(FacilityOperator{{}, "TestColo", true});
    f1 = topo.add_facility(
        Facility{{}, "TestColo 1", op, metro, {50.0, 8.0}, "Testville"});
    f2 = topo.add_facility(
        Facility{{}, "TestColo 2", op, metro, {50.01, 8.01}, "Testville"});

    AutonomousSystem as_a;
    as_a.asn = a;
    as_a.name = "AS-A";
    as_a.prefixes = {*Prefix::parse("20.0.0.0/16")};
    as_a.facilities = {f1};
    topo.add_as(as_a);
    topo.announce(as_a.prefixes[0], a);

    AutonomousSystem as_b;
    as_b.asn = b;
    as_b.name = "AS-B";
    as_b.prefixes = {*Prefix::parse("20.1.0.0/16")};
    as_b.facilities = {f1, f2};
    topo.add_as(as_b);
    topo.announce(as_b.prefixes[0], b);

    Router router_a;
    router_a.owner = a;
    router_a.facility = f1;
    router_a.local_address = *Ipv4::parse("20.0.0.1");
    ra = topo.add_router(router_a);
    topo.add_interface(Interface{router_a.local_address, ra, LinkId::invalid(),
                                 InterfaceRole::Local});

    Router router_b;
    router_b.owner = b;
    router_b.facility = f1;
    router_b.local_address = *Ipv4::parse("20.1.0.1");
    rb = topo.add_router(router_b);
    topo.add_interface(Interface{router_b.local_address, rb, LinkId::invalid(),
                                 InterfaceRole::Local});
  }

  LinkId add_xconnect() {
    Link link;
    link.type = LinkType::PrivateCrossConnect;
    link.rel = BusinessRel::PeerPeer;
    link.a = LinkEnd{ra, *Ipv4::parse("20.0.0.5")};
    link.b = LinkEnd{rb, *Ipv4::parse("20.0.0.6")};
    link.facility = f1;
    const LinkId id = topo.add_link(link);
    topo.add_interface(Interface{*Ipv4::parse("20.0.0.5"), ra, id,
                                 InterfaceRole::PrivatePtp});
    topo.add_interface(Interface{*Ipv4::parse("20.0.0.6"), rb, id,
                                 InterfaceRole::PrivatePtp});
    return id;
  }
};

TEST(Topology, IdsAreDense) {
  Fixture fx;
  EXPECT_EQ(fx.f1.value, 0u);
  EXPECT_EQ(fx.f2.value, 1u);
  EXPECT_EQ(fx.topo.facilities().size(), 2u);
}

TEST(Topology, DuplicateAsnRejected) {
  Fixture fx;
  AutonomousSystem dup;
  dup.asn = fx.a;
  EXPECT_THROW(fx.topo.add_as(dup), std::invalid_argument);
}

TEST(Topology, InvalidAsnRejected) {
  Topology topo;
  AutonomousSystem bad;  // asn 0
  EXPECT_THROW(topo.add_as(bad), std::invalid_argument);
}

TEST(Topology, DuplicateInterfaceRejected) {
  Fixture fx;
  EXPECT_THROW(
      fx.topo.add_interface(Interface{*Ipv4::parse("20.0.0.1"), fx.ra,
                                      LinkId::invalid(), InterfaceRole::Local}),
      std::invalid_argument);
}

TEST(Topology, FindInterface) {
  Fixture fx;
  const Interface* iface = fx.topo.find_interface(*Ipv4::parse("20.0.0.1"));
  ASSERT_NE(iface, nullptr);
  EXPECT_EQ(iface->router, fx.ra);
  EXPECT_EQ(fx.topo.find_interface(*Ipv4::parse("9.9.9.9")), nullptr);
}

TEST(Topology, LinksOfTracksBothEndpoints) {
  Fixture fx;
  const LinkId id = fx.add_xconnect();
  ASSERT_EQ(fx.topo.links_of(fx.ra).size(), 1u);
  ASSERT_EQ(fx.topo.links_of(fx.rb).size(), 1u);
  EXPECT_EQ(fx.topo.links_of(fx.ra)[0], id);
}

TEST(Topology, OriginLookupUsesLongestMatch) {
  Fixture fx;
  EXPECT_EQ(fx.topo.origin_of(*Ipv4::parse("20.0.5.5")), fx.a);
  EXPECT_EQ(fx.topo.origin_of(*Ipv4::parse("20.1.5.5")), fx.b);
  EXPECT_FALSE(fx.topo.origin_of(*Ipv4::parse("30.0.0.1")).has_value());
}

TEST(Topology, RelationshipGraph) {
  Fixture fx;
  fx.topo.add_relationship(fx.a, fx.b);  // a customer of b
  EXPECT_TRUE(fx.topo.is_provider_of(fx.b, fx.a));
  EXPECT_FALSE(fx.topo.is_provider_of(fx.a, fx.b));
  EXPECT_FALSE(fx.topo.is_peer_of(fx.a, fx.b));
  fx.topo.add_peering(fx.a, fx.b);
  EXPECT_TRUE(fx.topo.is_peer_of(fx.a, fx.b));
  EXPECT_TRUE(fx.topo.is_peer_of(fx.b, fx.a));
}

TEST(Topology, RelationsOfUnknownAsnIsEmpty) {
  Topology topo;
  const auto& rel = topo.relations(Asn(42));
  EXPECT_TRUE(rel.providers.empty());
  EXPECT_TRUE(rel.customers.empty());
  EXPECT_TRUE(rel.peers.empty());
}

TEST(Topology, RoutersAtAndOf) {
  Fixture fx;
  EXPECT_EQ(fx.topo.routers_of(fx.a).size(), 1u);
  EXPECT_EQ(fx.topo.routers_at(fx.b, fx.f1).size(), 1u);
  EXPECT_TRUE(fx.topo.routers_at(fx.b, fx.f2).empty());
}

TEST(Topology, ValidatePassesOnConsistentTopology) {
  Fixture fx;
  fx.add_xconnect();
  EXPECT_NO_THROW(fx.topo.validate());
}

TEST(Topology, ValidateCatchesRouterAtForeignFacility) {
  Fixture fx;
  Router rogue;
  rogue.owner = fx.a;
  rogue.facility = fx.f2;  // AS A is not present at f2
  rogue.local_address = *Ipv4::parse("20.0.0.99");
  const RouterId id = fx.topo.add_router(rogue);
  fx.topo.add_interface(Interface{rogue.local_address, id, LinkId::invalid(),
                                  InterfaceRole::Local});
  EXPECT_THROW(fx.topo.validate(), std::logic_error);
}

TEST(Topology, ValidateCatchesCrossConnectWithinOneAs) {
  Fixture fx;
  Router second;
  second.owner = fx.b;
  second.facility = fx.f2;
  second.local_address = *Ipv4::parse("20.1.0.2");
  const RouterId rb2 = fx.topo.add_router(second);
  fx.topo.add_interface(Interface{second.local_address, rb2, LinkId::invalid(),
                                  InterfaceRole::Local});

  Link link;
  link.type = LinkType::PrivateCrossConnect;
  link.rel = BusinessRel::PeerPeer;
  link.a = LinkEnd{fx.rb, *Ipv4::parse("20.1.0.5")};
  link.b = LinkEnd{rb2, *Ipv4::parse("20.1.0.6")};
  link.facility = fx.f1;
  const LinkId id = fx.topo.add_link(link);
  fx.topo.add_interface(
      Interface{*Ipv4::parse("20.1.0.5"), fx.rb, id, InterfaceRole::PrivatePtp});
  fx.topo.add_interface(
      Interface{*Ipv4::parse("20.1.0.6"), rb2, id, InterfaceRole::PrivatePtp});
  EXPECT_THROW(fx.topo.validate(), std::logic_error);
}

TEST(Topology, ValidateCatchesUnregisteredLinkAddress) {
  Fixture fx;
  Link link;
  link.type = LinkType::PrivateCrossConnect;
  link.rel = BusinessRel::PeerPeer;
  link.a = LinkEnd{fx.ra, *Ipv4::parse("20.0.0.50")};  // never registered
  link.b = LinkEnd{fx.rb, *Ipv4::parse("20.0.0.51")};
  link.facility = fx.f1;
  fx.topo.add_link(link);
  EXPECT_THROW(fx.topo.validate(), std::logic_error);
}

TEST(Topology, OutOfRangeAccessorsThrow) {
  Topology topo;
  EXPECT_THROW(topo.metro(MetroId(0)), std::out_of_range);
  EXPECT_THROW(topo.facility(FacilityId(3)), std::out_of_range);
  EXPECT_THROW(topo.router(RouterId(1)), std::out_of_range);
  EXPECT_THROW(topo.as_of(Asn(77)), std::out_of_range);
}

TEST(Topology, AddLinkRejectsUnknownRouters) {
  Topology topo;
  Link link;
  link.a = LinkEnd{RouterId(0), Ipv4(1)};
  link.b = LinkEnd{RouterId(1), Ipv4(2)};
  EXPECT_THROW(topo.add_link(link), std::invalid_argument);
}

}  // namespace
}  // namespace cfs
