#include "topology/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace cfs {
namespace {

// The generator self-validates (generate_topology calls validate()); these
// tests check the *statistical* and structural properties the experiments
// rely on, across the preset scales.

class GeneratorTest : public ::testing::TestWithParam<GeneratorConfig> {};

TEST_P(GeneratorTest, ProducesValidatedTopology) {
  const Topology topo = generate_topology(GetParam());
  EXPECT_GT(topo.metros().size(), 0u);
  EXPECT_GT(topo.facilities().size(), 0u);
  EXPECT_GT(topo.ixps().size(), 0u);
  EXPECT_GT(topo.ases().size(), 0u);
  EXPECT_GT(topo.routers().size(), 0u);
  EXPECT_GT(topo.links().size(), 0u);
}

TEST_P(GeneratorTest, EveryAsHasAddressSpaceAndPresence) {
  const Topology topo = generate_topology(GetParam());
  for (const auto& as : topo.ases()) {
    EXPECT_FALSE(as.prefixes.empty()) << as.name;
    EXPECT_FALSE(as.facilities.empty()) << as.name;
    // Announced space resolves back to the AS.
    for (const auto& p : as.prefixes)
      EXPECT_EQ(topo.origin_of(p.at(1)), as.asn) << as.name;
  }
}

TEST_P(GeneratorTest, FacilityListsAreSortedForSetIntersection) {
  const Topology topo = generate_topology(GetParam());
  for (const auto& as : topo.ases())
    EXPECT_TRUE(std::is_sorted(as.facilities.begin(), as.facilities.end()));
}

TEST_P(GeneratorTest, IxpPortsConsistentWithMembershipLists) {
  const Topology topo = generate_topology(GetParam());
  for (const auto& ixp : topo.ixps()) {
    for (const auto& port : ixp.ports) {
      const auto& as = topo.as_of(port.member);
      EXPECT_NE(std::find(as.ixps.begin(), as.ixps.end(), ixp.id),
                as.ixps.end())
          << as.name << " port without membership record at " << ixp.name;
    }
  }
  for (const auto& as : topo.ases())
    for (const IxpId ix : as.ixps)
      EXPECT_TRUE(topo.ixp(ix).is_member(as.asn))
          << as.name << " membership without port";
}

TEST_P(GeneratorTest, RemotePortsPointAwayFromAccessSwitchFacility) {
  const Topology topo = generate_topology(GetParam());
  for (const auto& ixp : topo.ixps()) {
    for (const auto& port : ixp.ports) {
      const auto& router = topo.router(port.router);
      if (port.remote) {
        EXPECT_TRUE(port.reseller.valid());
        EXPECT_TRUE(topo.ixp(ixp.id).is_member(port.reseller));
      } else {
        EXPECT_EQ(router.facility,
                  ixp.switches[port.access_switch].facility);
      }
    }
  }
}

TEST_P(GeneratorTest, EveryRelationshipHasPhysicalFootprint) {
  const Topology topo = generate_topology(GetParam());
  // Build adjacency from physical links.
  std::set<std::pair<std::uint32_t, std::uint32_t>> physical;
  for (const auto& link : topo.links()) {
    if (link.type == LinkType::Backbone) continue;
    const Asn a = topo.router(link.a.router).owner;
    const Asn b = topo.router(link.b.router).owner;
    physical.emplace(std::min(a.value, b.value), std::max(a.value, b.value));
  }
  // Count how many declared relationships have at least one physical link.
  std::size_t declared = 0;
  std::size_t instantiated = 0;
  for (const auto& as : topo.ases()) {
    for (const Asn p : topo.relations(as.asn).providers) {
      ++declared;
      instantiated += physical.count({std::min(as.asn.value, p.value),
                                      std::max(as.asn.value, p.value)});
    }
  }
  ASSERT_GT(declared, 0u);
  // Provider links must essentially always be physically instantiated.
  EXPECT_GT(static_cast<double>(instantiated) / declared, 0.95);
}

TEST_P(GeneratorTest, BackboneKeepsEachAsConnected) {
  const Topology topo = generate_topology(GetParam());
  for (const auto& as : topo.ases()) {
    const auto routers = topo.routers_of(as.asn);
    if (routers.size() < 2) continue;
    // BFS over backbone links only.
    std::unordered_set<std::uint32_t> seen = {routers[0].value};
    std::vector<RouterId> queue = {routers[0]};
    while (!queue.empty()) {
      const RouterId cur = queue.back();
      queue.pop_back();
      for (const LinkId lid : topo.links_of(cur)) {
        const Link& link = topo.link(lid);
        if (link.type != LinkType::Backbone) continue;
        const RouterId other =
            link.a.router == cur ? link.b.router : link.a.router;
        if (seen.insert(other.value).second) queue.push_back(other);
      }
    }
    EXPECT_EQ(seen.size(), routers.size()) << as.name << " backbone split";
  }
}

TEST_P(GeneratorTest, AllFourInterconnectionTypesPresent) {
  const Topology topo = generate_topology(GetParam());
  bool xconnect = false;
  bool public_peering = false;
  bool tether = false;
  bool remote_public = false;
  for (const auto& link : topo.links()) {
    switch (link.type) {
      case LinkType::PrivateCrossConnect: xconnect = true; break;
      case LinkType::Tethering: tether = true; break;
      case LinkType::PublicPeering: {
        public_peering = true;
        const auto& ixp = topo.ixp(link.ixp);
        const auto* pa = ixp.port_of(topo.router(link.a.router).owner,
                                     link.a.router);
        const auto* pb = ixp.port_of(topo.router(link.b.router).owner,
                                     link.b.router);
        if ((pa && pa->remote) || (pb && pb->remote)) remote_public = true;
        break;
      }
      case LinkType::Backbone: break;
    }
  }
  EXPECT_TRUE(xconnect);
  EXPECT_TRUE(public_peering);
  EXPECT_TRUE(tether);
  EXPECT_TRUE(remote_public);
}

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  const Topology t1 = generate_topology(GetParam());
  const Topology t2 = generate_topology(GetParam());
  ASSERT_EQ(t1.links().size(), t2.links().size());
  ASSERT_EQ(t1.routers().size(), t2.routers().size());
  for (std::size_t i = 0; i < t1.links().size(); ++i) {
    EXPECT_EQ(t1.links()[i].a.address, t2.links()[i].a.address);
    EXPECT_EQ(t1.links()[i].type, t2.links()[i].type);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorTest,
                         ::testing::Values(GeneratorConfig::tiny(),
                                           GeneratorConfig::small_scale()),
                         [](const auto& info) {
                           return info.index == 0 ? "tiny" : "small";
                         });

TEST(Generator, SeedChangesTopology) {
  GeneratorConfig a = GeneratorConfig::tiny();
  GeneratorConfig b = GeneratorConfig::tiny();
  b.seed = a.seed + 1;
  const Topology ta = generate_topology(a);
  const Topology tb = generate_topology(b);
  // Extremely unlikely to coincide.
  EXPECT_NE(ta.links().size(), tb.links().size());
}

TEST(Generator, MultiPortMembersExistAtSomeIxp) {
  // The proximity-heuristic experiment requires members with two ports at
  // one exchange; the small scale must produce at least a few.
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  int multi_port_members = 0;
  for (const auto& ixp : topo.ixps()) {
    std::unordered_map<std::uint32_t, int> per_member;
    for (const auto& port : ixp.ports) ++per_member[port.member.value];
    for (const auto& [asn, n] : per_member) multi_port_members += (n >= 2);
  }
  EXPECT_GT(multi_port_members, 0);
}

TEST(Generator, RemoteMemberFractionRoughlyHonoured) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  std::size_t remote = 0;
  std::size_t total = 0;
  for (const auto& ixp : topo.ixps()) {
    for (const auto& port : ixp.ports) {
      ++total;
      remote += port.remote;
    }
  }
  ASSERT_GT(total, 0u);
  const double fraction = static_cast<double>(remote) / total;
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.35);
}

}  // namespace
}  // namespace cfs
