#include "analysis/planning.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct PlanningFixture {
  MiniNet net;
  Asn a, c, e;
  CfsReport report;
  std::unique_ptr<NocWebsiteSource> noc;
  std::unique_ptr<IxpWebsiteSource> ixp_sites;
  std::unique_ptr<FacilityDatabase> db;

  PlanningFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 4});
    c = net.add_as(5000, AsType::Content, {1, 2});
    e = net.add_as(10000, AsType::Eyeball, {3});

    // Located interconnections: A and C at fac[1]; C also at fac[5]
    // (a building with no IXP switch); E at fac[3] (hosts an access
    // switch of FRA-IX).
    report.links.push_back(located(a, c, net.fac[1], net.fac[1]));
    report.links.push_back(located(c, e, net.fac[5], std::nullopt));
    report.links.push_back(located(e, a, net.fac[3], std::nullopt));

    PeeringDbConfig pdb;
    pdb.as_record_missing = 0.0;
    pdb.fac_link_missing = 0.0;
    pdb.ixp_record_missing = 0.0;
    pdb.ixp_fac_link_missing = 0.0;
    pdb.stale_link = 0.0;
    WebsiteConfig web;
    noc = std::make_unique<NocWebsiteSource>(net.topo, web);
    ixp_sites = std::make_unique<IxpWebsiteSource>(net.topo, web);
    db = std::make_unique<FacilityDatabase>(
        net.topo, PeeringDb(net.topo, pdb), *noc, *ixp_sites);
  }

  LinkInference located(Asn near, Asn far, FacilityId near_fac,
                        std::optional<FacilityId> far_fac) {
    LinkInference link;
    link.obs.near_as = near;
    link.obs.far_as = far;
    link.obs.near_addr = net.take_address(near);
    link.obs.far_addr = net.take_address(far);
    link.near_facility = near_fac;
    link.far_facility = far_fac;
    return link;
  }
};

TEST(Planning, RanksByDesiredPeerDensity) {
  PlanningFixture fx;
  PeeringPlanner planner(fx.net.topo, *fx.db, fx.report);
  // Want to reach A and C: fac[1] hosts both, fac[2] hosts only C.
  const auto ranked = planner.rank_for({fx.a, fx.c});
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].facility, fx.net.fac[1]);
  EXPECT_EQ(ranked[0].peer_candidates, 2u);
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(Planning, IxpPresenceBreaksTies) {
  PlanningFixture fx;
  PeeringPlanner planner(fx.net.topo, *fx.db, fx.report);
  // fac[5] (plain) vs fac[3] (hosts an access switch of FRA-IX): wanting
  // one peer at each, the IXP building wins.
  const auto ranked = planner.rank_for({fx.c, fx.e}, {fx.net.fac[1]});
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].facility, fx.net.fac[3]);
  EXPECT_GT(ranked[0].ixps_reachable, 0u);
}

TEST(Planning, ExcludeRemovesExistingPresence) {
  PlanningFixture fx;
  PeeringPlanner planner(fx.net.topo, *fx.db, fx.report);
  for (const auto& score : planner.rank_for({fx.a, fx.c}, {fx.net.fac[1]}))
    EXPECT_NE(score.facility, fx.net.fac[1]);
}

TEST(Planning, ZeroMatchFacilitiesOmitted) {
  PlanningFixture fx;
  PeeringPlanner planner(fx.net.topo, *fx.db, fx.report);
  // Nobody wants AS E: facilities hosting only E are not suggested.
  const auto ranked = planner.rank_for({fx.a});
  for (const auto& score : ranked) {
    EXPECT_GT(score.peer_candidates, 0u);
    EXPECT_NE(score.facility, fx.net.fac[5]);  // only C there
  }
}

TEST(Planning, NetworksAtListsLocatedAses) {
  PlanningFixture fx;
  PeeringPlanner planner(fx.net.topo, *fx.db, fx.report);
  const auto at1 = planner.networks_at(fx.net.fac[1]);
  EXPECT_EQ(at1.size(), 2u);  // A and C
  EXPECT_EQ(planner.networks_at(fx.net.fac[5]).size(), 1u);  // C only
  EXPECT_TRUE(planner.networks_at(fx.net.fac[4]).empty());
}

TEST(Planning, WorksOnRealPipelineOutput) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 8;
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  PeeringPlanner planner(pipeline.topology(), pipeline.facility_db(), report);
  const auto targets = pipeline.default_targets(2, 2);
  const auto ranked = planner.rank_for(targets);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
}

}  // namespace
}  // namespace cfs
