#include "analysis/diff.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"

namespace cfs {
namespace {

Ipv4 ip(std::uint32_t v) { return Ipv4(v); }

InterfaceInference resolved_iface(Ipv4 addr, FacilityId fac) {
  InterfaceInference inf;
  inf.addr = addr;
  inf.constrain({fac}, 1);
  return inf;
}

InterfaceInference open_iface(Ipv4 addr) {
  InterfaceInference inf;
  inf.addr = addr;
  inf.constrain({FacilityId(1), FacilityId(2)}, 1);
  return inf;
}

LinkInference plain_link(Ipv4 near, Ipv4 far, InterconnectionType type) {
  LinkInference link;
  link.obs.near_addr = near;
  link.obs.far_addr = far;
  link.type = type;
  return link;
}

TEST(Diff, IdenticalReportsAreEmpty) {
  CfsReport report;
  report.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(0)));
  report.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicLocal));
  EXPECT_TRUE(diff_reports(report, report).empty());
}

TEST(Diff, ResolutionTransitions) {
  CfsReport before;
  before.interfaces.emplace(ip(1), open_iface(ip(1)));
  before.interfaces.emplace(ip(2), resolved_iface(ip(2), FacilityId(5)));

  CfsReport after;
  after.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(3)));
  after.interfaces.emplace(ip(2), open_iface(ip(2)));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.newly_resolved.size(), 1u);
  EXPECT_EQ(diff.newly_resolved[0], ip(1));
  ASSERT_EQ(diff.lost.size(), 1u);
  EXPECT_EQ(diff.lost[0], ip(2));
  EXPECT_TRUE(diff.moved.empty());
}

TEST(Diff, MovedFacilities) {
  CfsReport before;
  before.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(5)));
  CfsReport after;
  after.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(9)));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.moved.size(), 1u);
  EXPECT_EQ(diff.moved[0].before, FacilityId(5));
  EXPECT_EQ(diff.moved[0].after, FacilityId(9));
  EXPECT_TRUE(diff.newly_resolved.empty());
  EXPECT_TRUE(diff.lost.empty());
}

TEST(Diff, LinkAppearanceAndRetyping) {
  CfsReport before;
  before.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicLocal));
  before.links.push_back(
      plain_link(ip(3), ip(4), InterconnectionType::PrivateCrossConnect));

  CfsReport after;
  after.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicRemote));
  after.links.push_back(
      plain_link(ip(5), ip(6), InterconnectionType::PrivateTethering));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.retyped.size(), 1u);
  EXPECT_EQ(diff.retyped[0].before, InterconnectionType::PublicLocal);
  EXPECT_EQ(diff.retyped[0].after, InterconnectionType::PublicRemote);
  ASSERT_EQ(diff.new_links.size(), 1u);
  EXPECT_EQ(diff.new_links[0], std::make_pair(ip(5), ip(6)));
  ASSERT_EQ(diff.gone_links.size(), 1u);
  EXPECT_EQ(diff.gone_links[0], std::make_pair(ip(3), ip(4)));
}

// --- structured JSON diff (the `cfs diff` / oracle-message machinery) ---

TEST(JsonDiff, IdenticalDocumentsAreEmpty) {
  const JsonValue doc = parse_json(R"({"a": 1, "b": [true, null, "x"]})");
  const JsonDiff diff = diff_json(doc, doc);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.total, 0u);
  EXPECT_EQ(diff.first_path(), "");
}

TEST(JsonDiff, ValueMismatchCarriesPathAndBothValues) {
  const JsonValue left = parse_json(R"({"outer": {"inner": [1, 2, 3]}})");
  const JsonValue right = parse_json(R"({"outer": {"inner": [1, 9, 3]}})");
  const JsonDiff diff = diff_json(left, right);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.first_path(), "/outer/inner/1");
  EXPECT_EQ(diff.entries[0].kind, JsonDiffEntry::Kind::ValueMismatch);
  EXPECT_EQ(diff.entries[0].left, "2");
  EXPECT_EQ(diff.entries[0].right, "9");
}

TEST(JsonDiff, MissingAndExtraKeys) {
  const JsonValue left = parse_json(R"({"both": 1, "only_left": 2})");
  const JsonValue right = parse_json(R"({"both": 1, "only_right": 3})");
  const JsonDiff diff = diff_json(left, right);
  ASSERT_EQ(diff.entries.size(), 2u);
  // Object keys walk in sorted order.
  EXPECT_EQ(diff.entries[0].path, "/only_left");
  EXPECT_EQ(diff.entries[0].kind, JsonDiffEntry::Kind::Missing);
  EXPECT_EQ(diff.entries[1].path, "/only_right");
  EXPECT_EQ(diff.entries[1].kind, JsonDiffEntry::Kind::Extra);
}

TEST(JsonDiff, TypeMismatchStopsDescent) {
  const JsonValue left = parse_json(R"({"x": {"deep": 1}})");
  const JsonValue right = parse_json(R"({"x": [1]})");
  const JsonDiff diff = diff_json(left, right);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].path, "/x");
  EXPECT_EQ(diff.entries[0].kind, JsonDiffEntry::Kind::TypeMismatch);
}

TEST(JsonDiff, ArrayLengthMismatch) {
  const JsonValue left = parse_json(R"([1, 2, 3])");
  const JsonValue right = parse_json(R"([1, 2])");
  const JsonDiff diff = diff_json(left, right);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].path, "/2");
  EXPECT_EQ(diff.entries[0].kind, JsonDiffEntry::Kind::Missing);
}

TEST(JsonDiff, RootScalarMismatch) {
  const JsonDiff diff = diff_json(parse_json("1"), parse_json("2"));
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.entries[0].path, "");
}

TEST(JsonDiff, EntryListIsBoundedButTotalIsNot) {
  JsonValue::Object left, right;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    left.emplace(key, i);
    right.emplace(key, i + 1000);
  }
  JsonDiffOptions options;
  options.max_entries = 5;
  const JsonDiff diff =
      diff_json(JsonValue(std::move(left)), JsonValue(std::move(right)),
                options);
  EXPECT_EQ(diff.entries.size(), 5u);
  EXPECT_EQ(diff.total, 50u);
  EXPECT_TRUE(diff.truncated());
}

TEST(JsonDiff, IgnorePrefixesDropSubtrees) {
  const JsonValue left =
      parse_json(R"({"metrics": {"wall_ms": 10}, "payload": 1})");
  const JsonValue right =
      parse_json(R"({"metrics": {"wall_ms": 99}, "payload": 2})");
  JsonDiffOptions options;
  options.ignore_prefixes = {"/metrics"};
  const JsonDiff diff = diff_json(left, right, options);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_EQ(diff.first_path(), "/payload");
  // Prefix matching is path-segment aware: "/metrics" must not swallow a
  // sibling key that merely starts with the same characters.
  const JsonValue l2 = parse_json(R"({"metricsX": 1})");
  const JsonValue r2 = parse_json(R"({"metricsX": 2})");
  EXPECT_FALSE(diff_json(l2, r2, options).empty());
}

TEST(JsonDiff, PrintedFormIsStable) {
  const JsonValue left = parse_json(R"({"a": 1})");
  const JsonValue right = parse_json(R"({"a": 2})");
  std::ostringstream os;
  print_json_diff(os, diff_json(left, right));
  EXPECT_EQ(os.str(),
            "first divergent path: /a\n"
            "  /a: value mismatch: 1 -> 2\n"
            "1 difference(s)\n");
  std::ostringstream same;
  print_json_diff(same, diff_json(left, left));
  EXPECT_EQ(same.str(), "identical\n");
}

TEST(Diff, SelfDiffOfRealRunIsEmptyAndCrossSeedIsNot) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 5;
  Pipeline p1(config);
  auto t1 = p1.initial_campaign(p1.default_targets(1, 1), 0.5);
  const CfsReport r1 = p1.run_cfs(std::move(t1));
  EXPECT_TRUE(diff_reports(r1, r1).empty());

  config.seed += 1;
  config.generator.seed += 1;
  Pipeline p2(config);
  auto t2 = p2.initial_campaign(p2.default_targets(1, 1), 0.5);
  const CfsReport r2 = p2.run_cfs(std::move(t2));
  EXPECT_FALSE(diff_reports(r1, r2).empty());
}

}  // namespace
}  // namespace cfs
