#include "analysis/diff.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace cfs {
namespace {

Ipv4 ip(std::uint32_t v) { return Ipv4(v); }

InterfaceInference resolved_iface(Ipv4 addr, FacilityId fac) {
  InterfaceInference inf;
  inf.addr = addr;
  inf.constrain({fac}, 1);
  return inf;
}

InterfaceInference open_iface(Ipv4 addr) {
  InterfaceInference inf;
  inf.addr = addr;
  inf.constrain({FacilityId(1), FacilityId(2)}, 1);
  return inf;
}

LinkInference plain_link(Ipv4 near, Ipv4 far, InterconnectionType type) {
  LinkInference link;
  link.obs.near_addr = near;
  link.obs.far_addr = far;
  link.type = type;
  return link;
}

TEST(Diff, IdenticalReportsAreEmpty) {
  CfsReport report;
  report.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(0)));
  report.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicLocal));
  EXPECT_TRUE(diff_reports(report, report).empty());
}

TEST(Diff, ResolutionTransitions) {
  CfsReport before;
  before.interfaces.emplace(ip(1), open_iface(ip(1)));
  before.interfaces.emplace(ip(2), resolved_iface(ip(2), FacilityId(5)));

  CfsReport after;
  after.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(3)));
  after.interfaces.emplace(ip(2), open_iface(ip(2)));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.newly_resolved.size(), 1u);
  EXPECT_EQ(diff.newly_resolved[0], ip(1));
  ASSERT_EQ(diff.lost.size(), 1u);
  EXPECT_EQ(diff.lost[0], ip(2));
  EXPECT_TRUE(diff.moved.empty());
}

TEST(Diff, MovedFacilities) {
  CfsReport before;
  before.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(5)));
  CfsReport after;
  after.interfaces.emplace(ip(1), resolved_iface(ip(1), FacilityId(9)));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.moved.size(), 1u);
  EXPECT_EQ(diff.moved[0].before, FacilityId(5));
  EXPECT_EQ(diff.moved[0].after, FacilityId(9));
  EXPECT_TRUE(diff.newly_resolved.empty());
  EXPECT_TRUE(diff.lost.empty());
}

TEST(Diff, LinkAppearanceAndRetyping) {
  CfsReport before;
  before.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicLocal));
  before.links.push_back(
      plain_link(ip(3), ip(4), InterconnectionType::PrivateCrossConnect));

  CfsReport after;
  after.links.push_back(
      plain_link(ip(1), ip(2), InterconnectionType::PublicRemote));
  after.links.push_back(
      plain_link(ip(5), ip(6), InterconnectionType::PrivateTethering));

  const ReportDiff diff = diff_reports(before, after);
  ASSERT_EQ(diff.retyped.size(), 1u);
  EXPECT_EQ(diff.retyped[0].before, InterconnectionType::PublicLocal);
  EXPECT_EQ(diff.retyped[0].after, InterconnectionType::PublicRemote);
  ASSERT_EQ(diff.new_links.size(), 1u);
  EXPECT_EQ(diff.new_links[0], std::make_pair(ip(5), ip(6)));
  ASSERT_EQ(diff.gone_links.size(), 1u);
  EXPECT_EQ(diff.gone_links[0], std::make_pair(ip(3), ip(4)));
}

TEST(Diff, SelfDiffOfRealRunIsEmptyAndCrossSeedIsNot) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 5;
  Pipeline p1(config);
  auto t1 = p1.initial_campaign(p1.default_targets(1, 1), 0.5);
  const CfsReport r1 = p1.run_cfs(std::move(t1));
  EXPECT_TRUE(diff_reports(r1, r1).empty());

  config.seed += 1;
  config.generator.seed += 1;
  Pipeline p2(config);
  auto t2 = p2.initial_campaign(p2.default_targets(1, 1), 0.5);
  const CfsReport r2 = p2.run_cfs(std::move(t2));
  EXPECT_FALSE(diff_reports(r1, r2).empty());
}

}  // namespace
}  // namespace cfs
