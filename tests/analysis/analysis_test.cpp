#include <gtest/gtest.h>

#include "analysis/footprint.h"
#include "analysis/resilience.h"
#include "core/pipeline.h"
#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

// Hand-crafted report over the MiniNet world: A peers with C privately at
// fac[1] (located both ends), publicly with E over the IXP (near located),
// and with C again at fac[4] (second site for the A-C pair).
struct AnalysisFixture {
  MiniNet net;
  Asn a{0}, c{0}, e{0};
  CfsReport report;

  AnalysisFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 4});
    c = net.add_as(5000, AsType::Content, {1, 4});
    e = net.add_as(10000, AsType::Eyeball, {3});

    report.links.push_back(make_link(PeeringKind::Private, a, c,
                                     InterconnectionType::PrivateCrossConnect,
                                     net.fac[1], net.fac[1]));
    report.links.push_back(make_link(PeeringKind::Public, a, e,
                                     InterconnectionType::PublicLocal,
                                     net.fac[1], std::nullopt));
    report.links.push_back(make_link(PeeringKind::Private, a, c,
                                     InterconnectionType::PrivateCrossConnect,
                                     net.fac[4], net.fac[4]));
    // An observed-but-unlocated crossing.
    report.links.push_back(make_link(PeeringKind::Public, e, c,
                                     InterconnectionType::PublicLocal,
                                     std::nullopt, std::nullopt));
  }

  LinkInference make_link(PeeringKind kind, Asn near, Asn far,
                          InterconnectionType type,
                          std::optional<FacilityId> near_fac,
                          std::optional<FacilityId> far_fac) {
    LinkInference link;
    link.obs.kind = kind;
    link.obs.near_as = near;
    link.obs.far_as = far;
    link.obs.near_addr = net.take_address(near);
    link.obs.far_addr = net.take_address(far);
    link.obs.ixp = kind == PeeringKind::Public ? net.ix : IxpId::invalid();
    link.type = type;
    link.near_facility = near_fac;
    link.far_facility = far_fac;
    return link;
  }
};

TEST(Footprint, TypeTallyArithmetic) {
  TypeTally tally;
  tally.bump(InterconnectionType::PublicLocal);
  tally.bump(InterconnectionType::PublicRemote);
  tally.bump(InterconnectionType::PrivateCrossConnect);
  tally.bump(InterconnectionType::Unknown);  // ignored
  EXPECT_EQ(tally.total(), 3u);
  EXPECT_EQ(tally.public_total(), 2u);
  EXPECT_EQ(tally.private_total(), 1u);
  EXPECT_NEAR(tally.public_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(TypeTally{}.public_share(), 0.0);
}

TEST(Footprint, PerAsAggregation) {
  AnalysisFixture fx;
  FootprintAnalyzer analyzer(fx.net.topo, fx.report);

  const AsFootprint fa = analyzer.footprint(fx.a);
  // A appears on 3 links, all located on its side.
  EXPECT_EQ(fa.types.total(), 3u);
  EXPECT_EQ(fa.located, 3u);
  EXPECT_EQ(fa.unlocated, 0u);
  EXPECT_EQ(fa.types.cross_connect, 2u);
  EXPECT_EQ(fa.types.public_local, 1u);
  EXPECT_EQ(fa.metros(), 2u);  // Frankfurt (fac 1) and London (fac 4)

  const AsFootprint fe = analyzer.footprint(fx.e);
  // E: far side of A-E public (unlocated far), near side of E-C (unlocated).
  EXPECT_EQ(fe.types.total(), 2u);
  EXPECT_EQ(fe.located, 0u);
  EXPECT_EQ(fe.unlocated, 2u);
}

TEST(Footprint, UnknownAsGivesEmptyFootprint) {
  AnalysisFixture fx;
  FootprintAnalyzer analyzer(fx.net.topo, fx.report);
  const AsFootprint fp = analyzer.footprint(Asn(424242));
  EXPECT_EQ(fp.types.total(), 0u);
  EXPECT_EQ(fp.located + fp.unlocated, 0u);
}

TEST(Footprint, RankingByLocatedCount) {
  AnalysisFixture fx;
  FootprintAnalyzer analyzer(fx.net.topo, fx.report);
  const auto ranking = analyzer.ranking();
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking.front(), fx.a);  // 3 located appearances
}

TEST(Resilience, PairSiteCounting) {
  AnalysisFixture fx;
  ResilienceAnalyzer analyzer(fx.net.topo, fx.report);
  EXPECT_EQ(analyzer.pair_site_count(fx.a, fx.c), 2u);  // fac 1 and fac 4
  EXPECT_EQ(analyzer.pair_site_count(fx.c, fx.a), 2u);  // symmetric
  EXPECT_EQ(analyzer.pair_site_count(fx.a, fx.e), 1u);
  EXPECT_EQ(analyzer.pair_site_count(fx.e, fx.c), 0u);  // never located
}

TEST(Resilience, SingleHomedPairsPerFacility) {
  AnalysisFixture fx;
  ResilienceAnalyzer analyzer(fx.net.topo, fx.report);
  // At fac[1]: pairs (A,C) [two sites] and (A,E) [single site].
  const auto singles = analyzer.single_homed_pairs(fx.net.fac[1]);
  ASSERT_EQ(singles.size(), 1u);
  EXPECT_EQ(std::minmax(singles[0].first.value, singles[0].second.value),
            std::minmax(fx.a.value, fx.e.value));
  EXPECT_TRUE(analyzer.single_homed_pairs(fx.net.fac[3]).empty());
}

TEST(Resilience, CriticalityRankingOrdersBySingleHomedThenCount) {
  AnalysisFixture fx;
  ResilienceAnalyzer analyzer(fx.net.topo, fx.report);
  const auto ranking = analyzer.criticality_ranking();
  ASSERT_EQ(ranking.size(), 2u);  // fac[1] and fac[4]
  EXPECT_EQ(ranking.front().facility, fx.net.fac[1]);
  EXPECT_EQ(ranking.front().interconnections, 2u);
  EXPECT_EQ(ranking.front().as_pairs, 2u);
  EXPECT_EQ(ranking.front().single_homed_pairs, 1u);
  EXPECT_EQ(ranking.back().facility, fx.net.fac[4]);
  EXPECT_EQ(ranking.back().single_homed_pairs, 0u);
}

TEST(AnalysisIntegration, WorksOnRealPipelineOutput) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 8;
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  FootprintAnalyzer footprints(pipeline.topology(), report);
  EXPECT_FALSE(footprints.all().empty());
  std::size_t located = 0;
  for (const auto& [asn, fp] : footprints.all()) located += fp.located;
  EXPECT_GT(located, 0u);

  ResilienceAnalyzer resilience(pipeline.topology(), report);
  const auto ranking = resilience.criticality_ranking();
  ASSERT_FALSE(ranking.empty());
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].single_homed_pairs + 1,
              ranking[i].single_homed_pairs);  // non-strict ordering check
  }
  // Content networks should skew more public than tier1/transit overall.
  double content_public = 0, content_n = 0, transit_public = 0, transit_n = 0;
  for (const auto& [asn_value, fp] : footprints.all()) {
    if (!pipeline.topology().has_as(Asn(asn_value))) continue;
    const auto type = pipeline.topology().as_of(Asn(asn_value)).type;
    if (fp.types.total() < 3) continue;
    if (type == AsType::Content) {
      content_public += fp.types.public_share();
      ++content_n;
    } else if (type == AsType::Tier1 || type == AsType::Transit) {
      transit_public += fp.types.public_share();
      ++transit_n;
    }
  }
  if (content_n > 0 && transit_n > 0)
    EXPECT_GT(content_public / content_n, transit_public / transit_n - 0.25);
}

}  // namespace
}  // namespace cfs
