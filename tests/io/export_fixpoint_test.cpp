// Round-trip fixpoint property: export must be a pure function of report
// content. `to_json ∘ from_json` applied to an exported document must
// reproduce it byte for byte — and stay byte-stable on a second pass —
// even for reports produced under heavy fault plans, whose attrition
// counters and degraded inferences exercise every optional field. A
// report that drifts across passes would poison both the regression
// corpus and the `cfs diff` workflow (docs/TESTING.md).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "io/export.h"

namespace cfs {
namespace {

PipelineConfig faulted_config(std::uint64_t seed) {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = seed;
  config.generator.seed = seed * 977 + 3;
  config.faults.lg_outage_fraction = 0.5;
  config.faults.vp_churn_fraction = 0.2;
  config.faults.probe_timeout_rate = 0.1;
  config.faults.lg_ban_burst = 3;
  config.faults.peeringdb_withheld = 0.2;
  config.faults.dns_withheld = 0.1;
  config.faults.geoip_withheld = 0.1;
  config.faults.seed = seed + 11;
  return config;
}

CfsReport faulted_report(std::uint64_t seed) {
  Pipeline pipeline(faulted_config(seed));
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.5);
  return pipeline.run_cfs(std::move(traces));
}

TEST(ExportFixpoint, ReportRoundTripIsByteStableUnderHeavyFaults) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const CfsReport report = faulted_report(seed);

    const std::string pass1 = report_to_json(report).pretty();
    const std::string pass2 =
        report_to_json(report_from_json(parse_json(pass1))).pretty();
    // Second pass through the round trip: a fixpoint, not merely equal
    // once. If pass1 == pass2 but pass2 != pass3 the exporter depends on
    // construction order (e.g. hash-map iteration), which is exactly the
    // drift this test exists to catch.
    const std::string pass3 =
        report_to_json(report_from_json(parse_json(pass2))).pretty();

    EXPECT_EQ(pass1, pass2);
    EXPECT_EQ(pass2, pass3);
  }
}

TEST(ExportFixpoint, TopologyRoundTripIsByteStable) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Topology topo = generate_topology(faulted_config(seed).generator);

    const std::string pass1 = topology_to_json(topo).pretty();
    const std::string pass2 =
        topology_to_json(topology_from_json(parse_json(pass1))).pretty();
    const std::string pass3 =
        topology_to_json(topology_from_json(parse_json(pass2))).pretty();

    EXPECT_EQ(pass1, pass2);
    EXPECT_EQ(pass2, pass3);
  }
}

// Exported equality must be content equality: a report rebuilt from JSON
// (fresh hash maps, different insertion order) must export identically to
// the original in-memory report.
TEST(ExportFixpoint, RebuiltReportExportsIdentically) {
  const CfsReport original = faulted_report(5);
  const JsonValue doc = report_to_json(original);
  const CfsReport rebuilt = report_from_json(doc);
  EXPECT_EQ(doc.pretty(), report_to_json(rebuilt).pretty());
}

}  // namespace
}  // namespace cfs
