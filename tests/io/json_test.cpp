#include "io/json.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(parse_json("null"), JsonValue(nullptr));
  EXPECT_EQ(parse_json("true"), JsonValue(true));
  EXPECT_EQ(parse_json("false"), JsonValue(false));
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_json("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, DumpScalars) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("x").dump(), "\"x\"");
}

TEST(Json, StringEscapes) {
  const JsonValue v(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(parse_json(v.dump()), v);
}

TEST(Json, UnicodeEscapeParses) {
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(Json, ControlCharacterEscaped) {
  const JsonValue v(std::string(1, '\x01'));
  EXPECT_EQ(v.dump(), "\"\\u0001\"");
  EXPECT_EQ(parse_json(v.dump()), v);
}

TEST(Json, ArraysAndObjects) {
  const JsonValue v = parse_json(R"({"a": [1, 2, {"b": null}], "c": true})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a").at(0).as_int(), 1);
  EXPECT_TRUE(v.at("a").at(2).at("b").is_null());
  EXPECT_TRUE(v.at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::out_of_range);
  EXPECT_THROW(v.at("a").at(9), std::out_of_range);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(parse_json("[]").dump(), "[]");
  EXPECT_EQ(parse_json("{}").dump(), "{}");
  EXPECT_EQ(parse_json("[ ]").size(), 0u);
}

TEST(Json, NestedRoundTrip) {
  JsonValue::Object inner;
  inner.emplace("x", 1);
  inner.emplace("y", JsonValue::Array{JsonValue("a"), JsonValue(2.25)});
  JsonValue::Object outer;
  outer.emplace("inner", JsonValue(std::move(inner)));
  outer.emplace("flag", false);
  const JsonValue original{std::move(outer)};

  EXPECT_EQ(parse_json(original.dump()), original);
  EXPECT_EQ(parse_json(original.pretty()), original);
}

TEST(Json, PrettyIsIndented) {
  const JsonValue v = parse_json(R"({"a": [1]})");
  const std::string pretty = v.pretty();
  EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
}

TEST(Json, WhitespaceTolerant) {
  EXPECT_EQ(parse_json("  {\n\t\"a\" : 1 }\r\n").at("a").as_int(), 1);
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01a", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "nul", "\"bad\\escape\"", "+5"}) {
    EXPECT_THROW(parse_json(bad), std::runtime_error) << bad;
  }
}

TEST(Json, LargeIntegersPreserved) {
  const auto v = parse_json("4294967295");
  EXPECT_EQ(v.as_int(), 4294967295LL);
  EXPECT_EQ(v.dump(), "4294967295");
}

}  // namespace
}  // namespace cfs
