#include "io/export.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

TEST(TopologyExport, RoundTripsGeneratedWorld) {
  const Topology original = generate_topology(GeneratorConfig::tiny());
  const JsonValue doc = topology_to_json(original);
  const Topology rebuilt = topology_from_json(doc);  // validates internally

  ASSERT_EQ(rebuilt.metros().size(), original.metros().size());
  ASSERT_EQ(rebuilt.operators().size(), original.operators().size());
  ASSERT_EQ(rebuilt.facilities().size(), original.facilities().size());
  ASSERT_EQ(rebuilt.ixps().size(), original.ixps().size());
  ASSERT_EQ(rebuilt.ases().size(), original.ases().size());
  ASSERT_EQ(rebuilt.routers().size(), original.routers().size());
  ASSERT_EQ(rebuilt.links().size(), original.links().size());

  // Spot-check deep content.
  for (std::size_t i = 0; i < original.links().size(); ++i) {
    EXPECT_EQ(rebuilt.links()[i].a.address, original.links()[i].a.address);
    EXPECT_EQ(rebuilt.links()[i].type, original.links()[i].type);
    EXPECT_EQ(rebuilt.links()[i].latency_ms, original.links()[i].latency_ms);
  }
  for (const auto& as : original.ases()) {
    const auto& copy = rebuilt.as_of(as.asn);
    EXPECT_EQ(copy.facilities, as.facilities);
    EXPECT_EQ(copy.prefixes, as.prefixes);
    EXPECT_EQ(copy.type, as.type);
    EXPECT_EQ(copy.dns_zone, as.dns_zone);
  }
  for (const auto& ixp : original.ixps()) {
    const auto& copy = rebuilt.ixp(ixp.id);
    ASSERT_EQ(copy.ports.size(), ixp.ports.size());
    for (std::size_t i = 0; i < ixp.ports.size(); ++i) {
      EXPECT_EQ(copy.ports[i].lan_address, ixp.ports[i].lan_address);
      EXPECT_EQ(copy.ports[i].remote, ixp.ports[i].remote);
    }
  }
}

TEST(TopologyExport, SerialisedTextRoundTrips) {
  const Topology original = generate_topology(GeneratorConfig::tiny());
  const std::string text = topology_to_json(original).pretty();
  const Topology rebuilt = topology_from_json(parse_json(text));
  EXPECT_EQ(rebuilt.links().size(), original.links().size());
  // Double round-trip must be textually identical (canonical form).
  EXPECT_EQ(topology_to_json(rebuilt).pretty(), text);
}

TEST(TopologyExport, RebuiltWorldBehavesIdentically) {
  // The rebuilt topology must route and announce exactly like the original.
  const Topology original = generate_topology(GeneratorConfig::tiny());
  const Topology rebuilt =
      topology_from_json(topology_to_json(original));

  RoutingOracle o1(original);
  RoutingOracle o2(rebuilt);
  const auto ases = original.ases();
  for (std::size_t i = 0; i < ases.size(); i += 5)
    for (std::size_t j = 0; j < ases.size(); j += 7) {
      const auto p1 = o1.as_path(ases[i].asn, ases[j].asn);
      const auto p2 = o2.as_path(ases[i].asn, ases[j].asn);
      EXPECT_EQ(p1, p2);
    }
}

TEST(TopologyExport, VersionMismatchRejected) {
  const Topology original = generate_topology(GeneratorConfig::tiny());
  JsonValue doc = topology_to_json(original);
  doc.as_object()["format_version"] = JsonValue(999);
  EXPECT_THROW(topology_from_json(doc), std::runtime_error);
}

TEST(ReportExport, RoundTripsRealReport) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 6;
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.5);
  const CfsReport original = pipeline.run_cfs(std::move(traces));

  const CfsReport rebuilt = report_from_json(report_to_json(original));

  EXPECT_EQ(rebuilt.traces_used, original.traces_used);
  EXPECT_EQ(rebuilt.iterations_run, original.iterations_run);
  EXPECT_EQ(rebuilt.resolved_per_iteration, original.resolved_per_iteration);
  EXPECT_EQ(rebuilt.observed_interfaces(), original.observed_interfaces());
  EXPECT_EQ(rebuilt.resolved_interfaces(), original.resolved_interfaces());
  EXPECT_EQ(rebuilt.links.size(), original.links.size());
  EXPECT_EQ(rebuilt.aliases.sets.size(), original.aliases.sets.size());

  for (const auto& [addr, inf] : original.interfaces) {
    const auto* copy = rebuilt.find(addr);
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->candidates, inf.candidates);
    EXPECT_EQ(copy->resolved_iteration, inf.resolved_iteration);
    EXPECT_EQ(copy->remote_suspect, inf.remote_suspect);
  }

  // Router statistics computed from the rebuilt report agree.
  const auto s1 = original.router_stats();
  const auto s2 = rebuilt.router_stats();
  EXPECT_EQ(s1.routers, s2.routers);
  EXPECT_EQ(s1.multi_role, s2.multi_role);
  EXPECT_EQ(s1.multi_ixp, s2.multi_ixp);

  // Metrics ride along (spot-check; MetricsRoundTrip covers every field).
  EXPECT_EQ(rebuilt.metrics.incremental, original.metrics.incremental);
  ASSERT_EQ(rebuilt.metrics.iterations.size(),
            original.metrics.iterations.size());
  for (std::size_t i = 0; i < original.metrics.iterations.size(); ++i) {
    EXPECT_EQ(rebuilt.metrics.iterations[i].dirty_observations,
              original.metrics.iterations[i].dirty_observations);
    EXPECT_DOUBLE_EQ(rebuilt.metrics.iterations[i].constrain_ms,
                     original.metrics.iterations[i].constrain_ms);
  }
}

TEST(ReportExport, MetricsRoundTrip) {
  CfsReport report;
  CfsMetrics& m = report.metrics;
  m.incremental = true;
  m.initial_classify_ms = 0.1234567890123456789;  // exercises %.17g
  m.initial_traces = 321;
  m.initial_observations = 654;
  m.alias_refreshes = 3;
  m.reclassified_traces = 17;
  m.reclassified_observations = 29;
  m.replayed_observations = 1000;
  m.total_ms = 98.765;
  m.faults.traces_attempted = 400;
  m.faults.traces_kept = 350;
  m.faults.traces_unreachable = 30;
  m.faults.retries = 41;
  m.faults.failovers = 7;
  m.faults.circuits_opened = 2;
  m.faults.probes_abandoned = 12;
  m.faults.probes_skipped_open_circuit = 8;
  m.faults.probe_timeouts = 55;
  m.faults.lg_bans = 3;
  m.faults.records_withheld = 91;

  IterationMetrics row;
  row.iteration = 1;
  row.classify_ms = 1.5;
  row.alias_ms = 2.25;
  row.reclassify_ms = 0.0625;
  row.constrain_ms = 1.0 / 3.0;
  row.followup_ms = 7.0;
  row.alias_refreshed = true;
  row.observations = 11;
  row.interfaces = 12;
  row.resolved = 13;
  row.classified_observations = 14;
  row.reclassified_traces = 15;
  row.replayed_observations = 16;
  row.dirty_observations = 17;
  row.constrained_observations = 18;
  row.alias_sets_processed = 19;
  row.followup_pool = 20;
  row.followup_budget = 21;
  row.followups_launched = 22;
  row.followups_skipped = 23;
  row.followup_traces = 24;
  m.iterations.push_back(row);

  // Through text, not just the JsonValue tree.
  const CfsReport rebuilt =
      report_from_json(parse_json(report_to_json(report).pretty()));
  const CfsMetrics& r = rebuilt.metrics;
  EXPECT_EQ(r.incremental, m.incremental);
  EXPECT_EQ(r.initial_classify_ms, m.initial_classify_ms);
  EXPECT_EQ(r.initial_traces, m.initial_traces);
  EXPECT_EQ(r.initial_observations, m.initial_observations);
  EXPECT_EQ(r.alias_refreshes, m.alias_refreshes);
  EXPECT_EQ(r.reclassified_traces, m.reclassified_traces);
  EXPECT_EQ(r.reclassified_observations, m.reclassified_observations);
  EXPECT_EQ(r.replayed_observations, m.replayed_observations);
  EXPECT_EQ(r.total_ms, m.total_ms);
  EXPECT_EQ(r.faults, m.faults);  // FaultMetrics round-trips whole
  ASSERT_EQ(r.iterations.size(), 1u);
  const IterationMetrics& got = r.iterations.front();
  EXPECT_EQ(got.iteration, row.iteration);
  EXPECT_EQ(got.classify_ms, row.classify_ms);
  EXPECT_EQ(got.alias_ms, row.alias_ms);
  EXPECT_EQ(got.reclassify_ms, row.reclassify_ms);
  EXPECT_EQ(got.constrain_ms, row.constrain_ms);
  EXPECT_EQ(got.followup_ms, row.followup_ms);
  EXPECT_EQ(got.alias_refreshed, row.alias_refreshed);
  EXPECT_EQ(got.observations, row.observations);
  EXPECT_EQ(got.interfaces, row.interfaces);
  EXPECT_EQ(got.resolved, row.resolved);
  EXPECT_EQ(got.classified_observations, row.classified_observations);
  EXPECT_EQ(got.reclassified_traces, row.reclassified_traces);
  EXPECT_EQ(got.replayed_observations, row.replayed_observations);
  EXPECT_EQ(got.dirty_observations, row.dirty_observations);
  EXPECT_EQ(got.constrained_observations, row.constrained_observations);
  EXPECT_EQ(got.alias_sets_processed, row.alias_sets_processed);
  EXPECT_EQ(got.followup_pool, row.followup_pool);
  EXPECT_EQ(got.followup_budget, row.followup_budget);
  EXPECT_EQ(got.followups_launched, row.followups_launched);
  EXPECT_EQ(got.followups_skipped, row.followups_skipped);
  EXPECT_EQ(got.followup_traces, row.followup_traces);
}

TEST(ReportExport, MetricsKeyOptionalForOldReports) {
  CfsReport report;
  report.traces_used = 1;
  JsonValue doc = report_to_json(report);
  doc.as_object().erase("metrics");  // a report written before metrics
  const CfsReport rebuilt = report_from_json(doc);
  EXPECT_EQ(rebuilt.traces_used, 1u);
  EXPECT_TRUE(rebuilt.metrics.iterations.empty());
}

TEST(ReportExport, FaultsKeyOptionalForOldReports) {
  CfsReport report;
  report.metrics.faults.traces_attempted = 9;
  JsonValue doc = report_to_json(report);
  // A report written before the fault plane: metrics exist, faults don't.
  doc.as_object().at("metrics").as_object().erase("faults");
  const CfsReport rebuilt = report_from_json(doc);
  EXPECT_EQ(rebuilt.metrics.faults, FaultMetrics{});
}

// A report produced by a faulted campaign carries the real attrition
// accounting through JSON, and the accounting invariant holds end to end.
TEST(ReportExport, FaultedRunMetricsSurviveRoundTrip) {
  PipelineConfig config = PipelineConfig::tiny();
  config.cfs.max_iterations = 4;
  config.faults.lg_outage_fraction = 0.5;
  config.faults.vp_churn_fraction = 0.2;
  config.faults.probe_timeout_rate = 0.05;
  config.faults.peeringdb_withheld = 0.1;
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.5);
  const CfsReport original = pipeline.run_cfs(std::move(traces));

  const FaultMetrics& fm = original.metrics.faults;
  EXPECT_GT(fm.traces_attempted, 0u);
  EXPECT_EQ(fm.traces_attempted,
            fm.traces_kept + fm.traces_unreachable + fm.probes_abandoned +
                fm.probes_skipped_open_circuit);

  const CfsReport rebuilt =
      report_from_json(parse_json(report_to_json(original).pretty()));
  EXPECT_EQ(rebuilt.metrics.faults, fm);
}

TEST(ReportExport, LinkFieldsSurvive) {
  MiniNet net;
  CfsReport report;
  report.traces_used = 3;
  report.iterations_run = 2;
  report.resolved_per_iteration = {1, 2};

  LinkInference link;
  link.obs.kind = PeeringKind::Public;
  link.obs.near_addr = *Ipv4::parse("20.0.0.1");
  link.obs.near_as = Asn(1000);
  link.obs.far_addr = *Ipv4::parse("185.0.0.1");
  link.obs.far_as = Asn(5000);
  link.obs.ixp = net.ix;
  link.obs.near_rtt_ms = 1.5;
  link.obs.far_rtt_ms = 2.25;
  link.type = InterconnectionType::PublicRemote;
  link.near_facility = net.fac[1];
  link.far_by_proximity = true;
  report.links.push_back(link);

  const CfsReport rebuilt = report_from_json(report_to_json(report));
  ASSERT_EQ(rebuilt.links.size(), 1u);
  const LinkInference& copy = rebuilt.links.front();
  EXPECT_EQ(copy.obs.kind, PeeringKind::Public);
  EXPECT_EQ(copy.obs.ixp, net.ix);
  EXPECT_DOUBLE_EQ(copy.obs.far_rtt_ms, 2.25);
  EXPECT_EQ(copy.type, InterconnectionType::PublicRemote);
  ASSERT_TRUE(copy.near_facility.has_value());
  EXPECT_EQ(*copy.near_facility, net.fac[1]);
  EXPECT_FALSE(copy.far_facility.has_value());
  EXPECT_TRUE(copy.far_by_proximity);
}

}  // namespace
}  // namespace cfs
