// Property test: randomly generated JSON values round-trip through dump()
// and pretty() byte-identically after one normalisation pass.
#include <gtest/gtest.h>

#include "io/json.h"
#include "util/rng.h"

namespace cfs {
namespace {

JsonValue random_value(Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform(depth >= 4 ? 4 : 6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.chance(0.5));
    case 2:
      // Integral doubles only: arbitrary reals are not guaranteed to
      // round-trip through the compact formatter digit-for-digit.
      return JsonValue(rng.uniform_in(-1'000'000, 1'000'000));
    case 3: {
      std::string s;
      const std::uint64_t len = rng.uniform(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char* alphabet =
            "abcXYZ019 _-\"\\\n\t/";
        s.push_back(alphabet[rng.index(18)]);
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonValue::Array arr;
      const std::uint64_t len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i)
        arr.push_back(random_value(rng, depth + 1));
      return JsonValue(std::move(arr));
    }
    default: {
      JsonValue::Object obj;
      const std::uint64_t len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i)
        obj.emplace("k" + std::to_string(rng.uniform(100)),
                    random_value(rng, depth + 1));
      return JsonValue(std::move(obj));
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const JsonValue original = random_value(rng, 0);
    const std::string compact = original.dump();
    const JsonValue reparsed = parse_json(compact);
    EXPECT_EQ(reparsed, original) << compact;
    // Canonical form: a second dump is byte-identical.
    EXPECT_EQ(reparsed.dump(), compact);
  }
}

TEST_P(JsonFuzz, PrettyParseRoundTrip) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 100; ++trial) {
    const JsonValue original = random_value(rng, 0);
    EXPECT_EQ(parse_json(original.pretty()), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cfs
