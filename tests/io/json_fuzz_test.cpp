// Property test: randomly generated JSON values round-trip through dump()
// and pretty() byte-identically after one normalisation pass.
#include <gtest/gtest.h>

#include "io/json.h"
#include "util/rng.h"

namespace cfs {
namespace {

JsonValue random_value(Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform(depth >= 4 ? 4 : 6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.chance(0.5));
    case 2:
      // Integral doubles only: arbitrary reals are not guaranteed to
      // round-trip through the compact formatter digit-for-digit.
      return JsonValue(rng.uniform_in(-1'000'000, 1'000'000));
    case 3: {
      std::string s;
      const std::uint64_t len = rng.uniform(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char* alphabet =
            "abcXYZ019 _-\"\\\n\t/";
        s.push_back(alphabet[rng.index(18)]);
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonValue::Array arr;
      const std::uint64_t len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i)
        arr.push_back(random_value(rng, depth + 1));
      return JsonValue(std::move(arr));
    }
    default: {
      JsonValue::Object obj;
      const std::uint64_t len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i)
        obj.emplace("k" + std::to_string(rng.uniform(100)),
                    random_value(rng, depth + 1));
      return JsonValue(std::move(obj));
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const JsonValue original = random_value(rng, 0);
    const std::string compact = original.dump();
    const JsonValue reparsed = parse_json(compact);
    EXPECT_EQ(reparsed, original) << compact;
    // Canonical form: a second dump is byte-identical.
    EXPECT_EQ(reparsed.dump(), compact);
  }
}

TEST_P(JsonFuzz, PrettyParseRoundTrip) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 100; ++trial) {
    const JsonValue original = random_value(rng, 0);
    EXPECT_EQ(parse_json(original.pretty()), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4));

// ---- json_escape byte-level properties ----
//
// The escaper must emit valid, parseable JSON for ANY byte sequence:
// control characters and DEL escaped, invalid UTF-8 replaced with U+FFFD.
// Exported reports embed externally-influenced strings (DNS names), so
// "always valid UTF-8 out" is a correctness property, not cosmetics.

constexpr const char* kReplacement = "\xEF\xBF\xBD";  // U+FFFD

std::string escape_parse(const std::string& raw) {
  const JsonValue parsed = parse_json("\"" + json_escape(raw) + "\"");
  return parsed.as_string();
}

// Minimal independent UTF-8 validator (RFC 3629 table): the test's own
// referee, deliberately not sharing code with the escaper under test.
bool valid_utf8(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size()) {
    const unsigned char b0 = static_cast<unsigned char>(s[i]);
    std::size_t need = 0;
    unsigned lo = 0x80, hi = 0xBF;
    if (b0 <= 0x7F) { ++i; continue; }
    else if (b0 >= 0xC2 && b0 <= 0xDF) need = 1;
    else if (b0 == 0xE0) { need = 2; lo = 0xA0; }
    else if (b0 >= 0xE1 && b0 <= 0xEC) need = 2;
    else if (b0 == 0xED) { need = 2; hi = 0x9F; }
    else if (b0 >= 0xEE && b0 <= 0xEF) need = 2;
    else if (b0 == 0xF0) { need = 3; lo = 0x90; }
    else if (b0 >= 0xF1 && b0 <= 0xF3) need = 3;
    else if (b0 == 0xF4) { need = 3; hi = 0x8F; }
    else return false;
    if (i + need >= s.size()) return false;
    for (std::size_t k = 1; k <= need; ++k) {
      const unsigned char b = static_cast<unsigned char>(s[i + k]);
      const unsigned low = k == 1 ? lo : 0x80;
      const unsigned high = k == 1 ? hi : 0xBF;
      if (b < low || b > high) return false;
    }
    i += need + 1;
  }
  return true;
}

TEST(JsonEscapeBytes, EveryByteValueParsesToValidUtf8) {
  for (int b = 0; b < 256; ++b) {
    const std::string raw = "a" + std::string(1, static_cast<char>(b)) + "z";
    SCOPED_TRACE("byte=" + std::to_string(b));
    std::string out;
    ASSERT_NO_THROW(out = escape_parse(raw));
    EXPECT_TRUE(valid_utf8(out));
    EXPECT_EQ(out.front(), 'a');
    EXPECT_EQ(out.back(), 'z');
    if (b <= 0x7F) {
      // ASCII round-trips exactly (escaped or not).
      EXPECT_EQ(out, raw);
    } else {
      // A lone non-ASCII byte is never a complete sequence: replaced.
      EXPECT_EQ(out, "a" + std::string(kReplacement) + "z");
    }
  }
}

TEST(JsonEscapeBytes, DelIsEscaped) {
  EXPECT_EQ(json_escape("\x7f"), "\\u007f");
  EXPECT_EQ(escape_parse("x\x7fy"), "x\x7fy");
}

TEST(JsonEscapeBytes, ValidUtf8PassesThroughUntouched) {
  const std::string samples[] = {
      "caf\xC3\xA9",              // U+00E9, 2-byte
      "\xE2\x82\xAC""42",         // U+20AC euro, 3-byte
      "\xEF\xBF\xBD",             // U+FFFD itself
      "\xED\x9F\xBF",             // U+D7FF, last before surrogates
      "\xEE\x80\x80",             // U+E000, first after surrogates
      "\xF0\x90\x8D\x88",         // U+10348, 4-byte
      "\xF4\x8F\xBF\xBF",         // U+10FFFF, maximum
  };
  for (const std::string& s : samples) {
    SCOPED_TRACE(s);
    EXPECT_EQ(json_escape(s), s);
    EXPECT_EQ(escape_parse(s), s);
  }
}

TEST(JsonEscapeBytes, MalformedSequencesReplaced) {
  // (input, number of replacement chars expected for the invalid part)
  const std::pair<std::string, std::string> cases[] = {
      // Overlong encoding of '/' — C0 AF.
      {"\xC0\xAF", std::string(kReplacement) + kReplacement},
      // Overlong 3-byte (E0 80 80).
      {"\xE0\x80\x80", std::string(kReplacement) + kReplacement + kReplacement},
      // CESU-8 surrogate half (ED A0 80).
      {"\xED\xA0\x80", std::string(kReplacement) + kReplacement + kReplacement},
      // Beyond U+10FFFF (F4 90 80 80).
      {"\xF4\x90\x80\x80", std::string(kReplacement) + kReplacement +
                               kReplacement + kReplacement},
      // Truncated 2-byte sequence at end of string.
      {"ok\xC3", "ok" + std::string(kReplacement)},
      // Continuation byte with no lead.
      {"\x80ok", std::string(kReplacement) + "ok"},
  };
  for (const auto& [raw, expected] : cases) {
    SCOPED_TRACE(json_escape(raw));
    EXPECT_EQ(escape_parse(raw), expected);
  }
}

TEST(JsonEscapeBytes, RandomByteStringsAlwaysParseAndAreIdempotent) {
  Rng rng(0xb17e5);
  for (int trial = 0; trial < 500; ++trial) {
    std::string raw;
    const std::uint64_t len = rng.uniform(24);
    for (std::uint64_t i = 0; i < len; ++i)
      raw.push_back(static_cast<char>(rng.uniform(256)));
    SCOPED_TRACE("trial=" + std::to_string(trial));
    std::string sanitized;
    ASSERT_NO_THROW(sanitized = escape_parse(raw));
    EXPECT_TRUE(valid_utf8(sanitized)) << json_escape(raw);
    // Sanitising is a fixpoint: valid UTF-8 in, the same string out.
    EXPECT_EQ(escape_parse(sanitized), sanitized);
  }
}

}  // namespace
}  // namespace cfs
